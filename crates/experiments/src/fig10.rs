//! Figure 10: sensitivity of the PV off-chip traffic overhead to the L2
//! capacity (2 MB, 4 MB and 8 MB total).

use crate::report::{pct, Table};
use crate::runner::{HierarchyVariant, RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// One (workload, L2 size) point.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Workload name.
    pub workload: String,
    /// Total shared L2 capacity in megabytes.
    pub l2_mb: u64,
    /// Off-chip increase of PV-8 over the dedicated SMS at the same L2 size,
    /// attributable to L2 misses.
    pub miss_increase: f64,
    /// Off-chip increase attributable to L2 write-backs.
    pub writeback_increase: f64,
}

impl Fig10Row {
    /// Total off-chip bandwidth increase.
    pub fn total_increase(&self) -> f64 {
        self.miss_increase + self.writeback_increase
    }
}

/// The L2 capacities swept (total, shared by four cores).
pub fn l2_sizes() -> [u64; 3] {
    [2 * 1024 * 1024, 4 * 1024 * 1024, 8 * 1024 * 1024]
}

/// Runs the sweep for every workload and L2 size.
pub fn rows(runner: &Runner) -> Vec<Fig10Row> {
    let mut specs: Vec<RunSpec> = Vec::new();
    for &workload in &WorkloadId::all() {
        for &size in &l2_sizes() {
            let variant = HierarchyVariant::L2Size(size);
            specs.push(RunSpec {
                workload,
                prefetcher: PrefetcherKind::sms_1k_11a(),
                hierarchy: variant,
            });
            specs.push(RunSpec {
                workload,
                prefetcher: PrefetcherKind::sms_pv8(),
                hierarchy: variant,
            });
        }
    }
    runner.prefetch(&specs);
    let mut rows = Vec::new();
    for &workload in &WorkloadId::all() {
        for &size in &l2_sizes() {
            let variant = HierarchyVariant::L2Size(size);
            let dedicated = runner.metrics(&RunSpec {
                workload,
                prefetcher: PrefetcherKind::sms_1k_11a(),
                hierarchy: variant,
            });
            let pv = runner.metrics(&RunSpec {
                workload,
                prefetcher: PrefetcherKind::sms_pv8(),
                hierarchy: variant,
            });
            let base = dedicated.offchip_blocks().max(1) as f64;
            rows.push(Fig10Row {
                workload: workload.name().to_owned(),
                l2_mb: size / (1024 * 1024),
                miss_increase: (pv.hierarchy.l2_misses.total() as f64
                    - dedicated.hierarchy.l2_misses.total() as f64)
                    / base,
                writeback_increase: (pv.hierarchy.l2_writebacks.total() as f64
                    - dedicated.hierarchy.l2_writebacks.total() as f64)
                    / base,
            });
        }
    }
    rows
}

/// Renders the Figure 10 report.
pub fn report(runner: &Runner) -> String {
    let rows = rows(runner);
    let mut table = Table::new(
        "Figure 10 — off-chip bandwidth increase vs L2 capacity (PV-8 over dedicated SMS)",
    );
    table.header([
        "Workload",
        "L2 size",
        "L2 miss increase",
        "Writeback increase",
        "Total",
    ]);
    for row in &rows {
        table.row([
            row.workload.clone(),
            format!("{}MB", row.l2_mb),
            pct(row.miss_increase),
            pct(row.writeback_increase),
            pct(row.total_increase()),
        ]);
    }
    // Average per size for the trend note.
    let mut by_size: Vec<(u64, f64, usize)> =
        l2_sizes().iter().map(|&s| (s / (1024 * 1024), 0.0, 0)).collect();
    for row in &rows {
        if let Some(entry) = by_size.iter_mut().find(|(mb, _, _)| *mb == row.l2_mb) {
            entry.1 += row.total_increase();
            entry.2 += 1;
        }
    }
    let trend: Vec<String> = by_size
        .iter()
        .map(|(mb, total, count)| format!("{}MB: {}", mb, pct(total / (*count).max(1) as f64)))
        .collect();
    table.note(format!(
        "Average increase by L2 capacity — {} (paper shape: PV interferes less as the L2 grows; minimal at 8 MB).",
        trend.join(", ")
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_three_sizes() {
        assert_eq!(l2_sizes().len(), 3);
        assert_eq!(l2_sizes()[2], 8 * 1024 * 1024);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let row = Fig10Row {
            workload: "x".into(),
            l2_mb: 2,
            miss_increase: 0.2,
            writeback_increase: 0.1,
        };
        assert!((row.total_increase() - 0.3).abs() < 1e-12);
    }
}
