//! Figure 11: performance of the virtualized prefetcher with a slower L2
//! (8-cycle tag / 16-cycle data instead of 6/12).

use crate::report::{pct, Table};
use crate::runner::{HierarchyVariant, RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// One workload's Figure 11 bars.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Workload name.
    pub workload: String,
    /// Speedup of the dedicated SMS-1K over the no-prefetch baseline, both
    /// on the slow L2.
    pub sms_1k_speedup: f64,
    /// Speedup of SMS-PV8 over the same baseline.
    pub pv8_speedup: f64,
}

/// Runs the slow-L2 comparison for every workload.
pub fn rows(runner: &Runner) -> Vec<Fig11Row> {
    let variant = HierarchyVariant::SlowL2;
    let configs = [
        PrefetcherKind::None,
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_pv8(),
    ];
    let specs: Vec<RunSpec> = WorkloadId::all()
        .iter()
        .flat_map(|&workload| {
            configs.iter().map(move |config| RunSpec {
                workload,
                prefetcher: config.clone(),
                hierarchy: variant,
            })
        })
        .collect();
    runner.prefetch(&specs);
    WorkloadId::all()
        .iter()
        .map(|&workload| {
            let get = |prefetcher: PrefetcherKind| {
                runner.metrics(&RunSpec {
                    workload,
                    prefetcher,
                    hierarchy: variant,
                })
            };
            let baseline = get(PrefetcherKind::None);
            Fig11Row {
                workload: workload.name().to_owned(),
                sms_1k_speedup: get(PrefetcherKind::sms_1k_11a()).speedup_over(&baseline),
                pv8_speedup: get(PrefetcherKind::sms_pv8()).speedup_over(&baseline),
            }
        })
        .collect()
}

/// Renders the Figure 11 report.
pub fn report(runner: &Runner) -> String {
    let rows = rows(runner);
    let mut table =
        Table::new("Figure 11 — speedup with increased L2 latency (8/16-cycle tag/data)");
    table.header(["Workload", "SMS-1K", "SMS-PV8", "Difference"]);
    let mut diff_sum = 0.0;
    for row in &rows {
        diff_sum += (row.sms_1k_speedup - row.pv8_speedup).abs();
        table.row([
            row.workload.clone(),
            pct(row.sms_1k_speedup),
            pct(row.pv8_speedup),
            pct(row.sms_1k_speedup - row.pv8_speedup),
        ]);
    }
    table.note(format!(
        "Mean |difference|: {} (paper: the average difference between the dedicated and virtualized prefetcher \
         stays below 1.5% even with the slower L2).",
        pct(diff_sum / rows.len().max(1) as f64)
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_structure_holds_two_speedups() {
        let row = Fig11Row {
            workload: "x".into(),
            sms_1k_speedup: 0.2,
            pv8_speedup: 0.19,
        };
        assert!(row.sms_1k_speedup > row.pv8_speedup);
    }
}
