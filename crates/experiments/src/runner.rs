//! Shared simulation runner with caching and parallel execution.

use parking_lot::Mutex;
use pv_mem::{ContentionModel, HierarchyConfig};
use pv_sim::{run_streams, run_workload, run_workload_mix, PrefetcherKind, RunMetrics, SimConfig};
use pv_trace::Scenario;
use pv_workloads::WorkloadId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How long each simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short warm-up/measure windows: minutes for the whole reproduction.
    Quick,
    /// The full windows used for the numbers recorded in `EXPERIMENTS.md`
    /// (see that file at the repository root for how each scale is used).
    Paper,
    /// Very short windows for unit/integration tests and Criterion benches.
    Smoke,
}

impl Scale {
    /// Reads the scale from the `PV_REPRO_SCALE` environment variable
    /// (`quick`, `paper` or `smoke`), defaulting to `Quick`.
    pub fn from_env() -> Self {
        match std::env::var("PV_REPRO_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Quick,
        }
    }

    /// Parses a command-line value.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }

    /// The simulation configuration this scale runs (baseline hierarchy).
    pub fn config(self, prefetcher: PrefetcherKind) -> SimConfig {
        match self {
            Scale::Quick => SimConfig::quick(prefetcher),
            Scale::Paper => SimConfig::paper(prefetcher),
            Scale::Smoke => {
                let mut config = SimConfig::quick(prefetcher);
                config.warmup_records = 20_000;
                config.measure_records = 30_000;
                config
            }
        }
    }
}

/// The memory-hierarchy variant a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierarchyVariant {
    /// The paper's Table 1 baseline (8 MB L2, 6/12-cycle latency).
    Base,
    /// A different total L2 capacity in bytes (Figure 10).
    L2Size(u64),
    /// The slower 8/16-cycle L2 of Figure 11.
    SlowL2,
    /// The baseline under `ContentionModel::Queued` with the given DRAM
    /// data-bus transfer cost in cycles per 64-byte block (the bandwidth
    /// sweep knob; larger is slower).
    QueuedDram {
        /// Cycles one block occupies a channel's data bus.
        cycles_per_transfer: u64,
    },
    /// A queued-DRAM bandwidth point with a shortened prefetch-accuracy
    /// epoch (outcomes per window). The non-stationary scenario studies
    /// use this so the throttle feedback loop completes several epochs per
    /// workload phase and its re-convergence is observable within a run.
    QueuedDramEpoch {
        /// Cycles one block occupies a channel's data bus.
        cycles_per_transfer: u64,
        /// Prefetch outcomes per accuracy epoch (default hierarchy: 256).
        accuracy_epoch: u64,
    },
    /// The baseline with `bytes_per_core` bytes of PV region reserved per
    /// core — room for several cohabiting tables — under the given
    /// contention model (paper-default DRAM bandwidth).
    PvRegion {
        /// Reserved PV bytes per core (e.g. 128 KB for SMS + Markov).
        bytes_per_core: u64,
        /// How shared resources are timed.
        contention: ContentionModel,
    },
}

impl HierarchyVariant {
    /// Builds the hierarchy configuration for `cores` cores.
    pub fn build(self, cores: usize) -> HierarchyConfig {
        let base = HierarchyConfig::paper_baseline(cores);
        match self {
            HierarchyVariant::Base => base,
            HierarchyVariant::L2Size(bytes) => base.with_l2_size(bytes),
            HierarchyVariant::SlowL2 => base.with_slow_l2(),
            HierarchyVariant::QueuedDram {
                cycles_per_transfer,
            } => base
                .with_contention(ContentionModel::Queued)
                .with_dram_cycles_per_transfer(cycles_per_transfer),
            HierarchyVariant::QueuedDramEpoch {
                cycles_per_transfer,
                accuracy_epoch,
            } => base
                .with_contention(ContentionModel::Queued)
                .with_dram_cycles_per_transfer(cycles_per_transfer)
                .with_accuracy_epoch(accuracy_epoch),
            HierarchyVariant::PvRegion {
                bytes_per_core,
                contention,
            } => base.with_pv_bytes_per_core(bytes_per_core).with_contention(contention),
        }
    }

    /// Human-readable label for reports.
    pub fn label(self) -> String {
        match self {
            HierarchyVariant::Base => "base".to_owned(),
            HierarchyVariant::L2Size(bytes) => format!("l2-{}MB", bytes / (1024 * 1024)),
            HierarchyVariant::SlowL2 => "l2-slow".to_owned(),
            HierarchyVariant::QueuedDram {
                cycles_per_transfer,
            } => {
                format!("queued-cpt{cycles_per_transfer}")
            }
            HierarchyVariant::QueuedDramEpoch {
                cycles_per_transfer,
                accuracy_epoch,
            } => {
                format!("queued-cpt{cycles_per_transfer}-ep{accuracy_epoch}")
            }
            HierarchyVariant::PvRegion {
                bytes_per_core,
                contention,
            } => {
                let timing = match contention {
                    ContentionModel::Ideal => "ideal",
                    ContentionModel::Queued => "queued",
                };
                format!("pv{}KB-{timing}", bytes_per_core / 1024)
            }
        }
    }
}

/// Which workload(s) the cores run: the same workload on every core (the
/// paper's methodology) or a heterogeneous four-way mix (core `i` runs the
/// `i`-th entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WorkloadSel {
    Homogeneous(WorkloadId),
    PerCore([WorkloadId; 4]),
    /// Every core runs its slice of a non-stationary scenario composition
    /// (see `pv_trace::Scenario`); scenarios are small `Copy` values over
    /// workload identifiers and integer knobs, so they hash structurally
    /// like everything else in the key.
    Scenario(Scenario),
}

/// Cache key of one simulation: the full configuration, hashed structurally.
///
/// Deriving `Hash`/`Eq` over the actual configuration replaces the old
/// `format!`-built string keys — no allocation per lookup, and no risk of two
/// distinct configurations aliasing because their labels collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RunKey {
    workload: WorkloadSel,
    prefetcher: PrefetcherKind,
    hierarchy: HierarchyVariant,
}

/// One simulation to run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Which workload all four cores run.
    pub workload: WorkloadId,
    /// Which prefetcher each core uses.
    pub prefetcher: PrefetcherKind,
    /// Which memory hierarchy variant is simulated.
    pub hierarchy: HierarchyVariant,
}

impl RunSpec {
    /// A run on the baseline hierarchy.
    pub fn base(workload: WorkloadId, prefetcher: PrefetcherKind) -> Self {
        RunSpec {
            workload,
            prefetcher,
            hierarchy: HierarchyVariant::Base,
        }
    }

    fn key(&self) -> RunKey {
        RunKey {
            workload: WorkloadSel::Homogeneous(self.workload),
            prefetcher: self.prefetcher.clone(),
            hierarchy: self.hierarchy,
        }
    }
}

/// One non-stationary scenario simulation to run: every core consumes its
/// per-core stream of `scenario` (phase flips, flash crowds, diurnal
/// modulation, or an antagonist on the last core).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The scenario composition all cores run.
    pub scenario: Scenario,
    /// Which prefetcher each core uses.
    pub prefetcher: PrefetcherKind,
    /// Which memory hierarchy variant is simulated.
    pub hierarchy: HierarchyVariant,
}

impl ScenarioSpec {
    /// A scenario run on the baseline hierarchy.
    pub fn base(scenario: Scenario, prefetcher: PrefetcherKind) -> Self {
        ScenarioSpec {
            scenario,
            prefetcher,
            hierarchy: HierarchyVariant::Base,
        }
    }

    fn key(&self) -> RunKey {
        RunKey {
            workload: WorkloadSel::Scenario(self.scenario),
            prefetcher: self.prefetcher.clone(),
            hierarchy: self.hierarchy,
        }
    }
}

/// One heterogeneous multi-programmed simulation to run: core `i` runs
/// `workloads[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec {
    /// Per-core workloads.
    pub workloads: [WorkloadId; 4],
    /// Which prefetcher each core uses.
    pub prefetcher: PrefetcherKind,
    /// Which memory hierarchy variant is simulated.
    pub hierarchy: HierarchyVariant,
}

impl MixSpec {
    /// A mixed run on the baseline hierarchy.
    pub fn base(workloads: [WorkloadId; 4], prefetcher: PrefetcherKind) -> Self {
        MixSpec {
            workloads,
            prefetcher,
            hierarchy: HierarchyVariant::Base,
        }
    }

    /// Display label of the mix (e.g. `"Apache+DB2+Qry1+Qry17"`).
    pub fn label(&self) -> String {
        self.workloads.iter().map(|w| w.name()).collect::<Vec<_>>().join("+")
    }

    fn key(&self) -> RunKey {
        RunKey {
            workload: WorkloadSel::PerCore(self.workloads),
            prefetcher: self.prefetcher.clone(),
            hierarchy: self.hierarchy,
        }
    }
}

/// Runs simulations, caching results so experiments that share
/// configurations (most of them) never repeat work, and fanning independent
/// runs out over worker threads.
pub struct Runner {
    scale: Scale,
    threads: usize,
    cache: Mutex<HashMap<RunKey, Arc<RunMetrics>>>,
    runs_executed: AtomicUsize,
}

impl Runner {
    /// Creates a runner at the given scale using up to `threads` worker
    /// threads for batched runs.
    pub fn new(scale: Scale, threads: usize) -> Self {
        Runner {
            scale,
            threads: threads.max(1),
            cache: Mutex::new(HashMap::new()),
            runs_executed: AtomicUsize::new(0),
        }
    }

    /// A runner using all available parallelism.
    pub fn with_default_threads(scale: Scale) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::new(scale, threads)
    }

    /// The scale this runner executes at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Number of simulations actually executed (cache misses).
    pub fn runs_executed(&self) -> usize {
        self.runs_executed.load(Ordering::Relaxed)
    }

    fn execute(&self, key: &RunKey) -> Arc<RunMetrics> {
        let config =
            self.scale.config(key.prefetcher.clone()).with_hierarchy(key.hierarchy.build(4));
        let metrics = match key.workload {
            WorkloadSel::Homogeneous(workload) => run_workload(&config, &workload.params()),
            WorkloadSel::PerCore(workloads) => {
                let params: Vec<_> = workloads.iter().map(|w| w.params()).collect();
                run_workload_mix(&config, &params)
            }
            WorkloadSel::Scenario(scenario) => {
                let streams = scenario.build_streams(config.cores, config.seed);
                run_streams(&config, streams)
            }
        };
        self.runs_executed.fetch_add(1, Ordering::Relaxed);
        Arc::new(metrics)
    }

    fn metrics_for_key(&self, key: RunKey) -> Arc<RunMetrics> {
        if let Some(found) = self.cache.lock().get(&key) {
            return Arc::clone(found);
        }
        let metrics = self.execute(&key);
        self.cache.lock().insert(key, Arc::clone(&metrics));
        metrics
    }

    /// Returns the metrics for `spec`, running the simulation if it has not
    /// been run yet.
    pub fn metrics(&self, spec: &RunSpec) -> Arc<RunMetrics> {
        self.metrics_for_key(spec.key())
    }

    /// Returns the metrics for a heterogeneous mix, running the simulation
    /// if it has not been run yet (mixes share the same cache as
    /// homogeneous runs).
    pub fn metrics_mixed(&self, spec: &MixSpec) -> Arc<RunMetrics> {
        self.metrics_for_key(spec.key())
    }

    /// Returns the metrics for a scenario run, running the simulation if
    /// it has not been run yet (scenarios share the cache with everything
    /// else).
    pub fn metrics_scenario(&self, spec: &ScenarioSpec) -> Arc<RunMetrics> {
        self.metrics_for_key(spec.key())
    }

    fn prefetch_keys(&self, keys: Vec<RunKey>) {
        let pending: Vec<RunKey> = {
            let cache = self.cache.lock();
            let mut seen = std::collections::HashSet::new();
            keys.into_iter()
                .filter(|key| !cache.contains_key(key) && seen.insert(key.clone()))
                .collect()
        };
        if pending.is_empty() {
            return;
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(pending.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(key) = pending.get(index) else {
                        break;
                    };
                    // Re-check under the lock in case another worker beat us
                    // to it.
                    if self.cache.lock().contains_key(key) {
                        continue;
                    }
                    let metrics = self.execute(key);
                    self.cache.lock().insert(key.clone(), metrics);
                });
            }
        });
    }

    /// Runs every spec in `specs` that is not cached yet, in parallel.
    pub fn prefetch(&self, specs: &[RunSpec]) {
        self.prefetch_keys(specs.iter().map(RunSpec::key).collect());
    }

    /// Runs every mixed spec in `specs` that is not cached yet, in parallel.
    pub fn prefetch_mixed(&self, specs: &[MixSpec]) {
        self.prefetch_keys(specs.iter().map(MixSpec::key).collect());
    }

    /// Runs every scenario spec in `specs` that is not cached yet, in
    /// parallel.
    pub fn prefetch_scenarios(&self, specs: &[ScenarioSpec]) {
        self.prefetch_keys(specs.iter().map(ScenarioSpec::key).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_name("quick"), Some(Scale::Quick));
        assert_eq!(Scale::from_name("paper"), Some(Scale::Paper));
        assert_eq!(Scale::from_name("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::from_name("huge"), None);
    }

    #[test]
    fn hierarchy_variant_builds_expected_configs() {
        assert_eq!(
            HierarchyVariant::Base.build(4).l2.size_bytes,
            8 * 1024 * 1024
        );
        assert_eq!(
            HierarchyVariant::L2Size(2 * 1024 * 1024).build(4).l2.size_bytes,
            2 * 1024 * 1024
        );
        assert_eq!(HierarchyVariant::SlowL2.build(4).l2.tag_latency, 8);
        assert_eq!(HierarchyVariant::L2Size(4 * 1024 * 1024).label(), "l2-4MB");
    }

    #[test]
    fn run_specs_have_unique_keys_per_configuration() {
        let a = RunSpec::base(WorkloadId::Apache, PrefetcherKind::sms_pv8());
        let b = RunSpec::base(WorkloadId::Apache, PrefetcherKind::sms_1k_11a());
        let c = RunSpec {
            hierarchy: HierarchyVariant::SlowL2,
            ..a.clone()
        };
        let d = RunSpec {
            hierarchy: HierarchyVariant::QueuedDram {
                cycles_per_transfer: 64,
            },
            ..a.clone()
        };
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_ne!(a.key(), d.key());
        assert_ne!(c.key(), d.key());
    }

    #[test]
    fn mixed_keys_do_not_alias_homogeneous_keys() {
        let homogeneous = RunSpec::base(WorkloadId::Apache, PrefetcherKind::None);
        let mix = MixSpec::base([WorkloadId::Apache; 4], PrefetcherKind::None);
        // Even a mix of four identical workloads keys separately from the
        // homogeneous run (same simulated behaviour, different spec space).
        assert_ne!(homogeneous.key(), mix.key());
        assert_eq!(mix.label(), "Apache+Apache+Apache+Apache");
    }

    #[test]
    fn queued_variant_builds_contended_hierarchy() {
        use pv_mem::ContentionModel;
        let variant = HierarchyVariant::QueuedDram {
            cycles_per_transfer: 64,
        };
        let config = variant.build(4);
        assert_eq!(config.contention, ContentionModel::Queued);
        assert_eq!(config.dram.cycles_per_transfer, 64);
        assert_eq!(variant.label(), "queued-cpt64");
        assert_eq!(
            HierarchyVariant::Base.build(4).contention,
            ContentionModel::Ideal
        );
    }

    #[test]
    fn mixed_metrics_are_cached() {
        let runner = Runner::new(Scale::Smoke, 2);
        let spec = MixSpec::base(
            [
                WorkloadId::Qry1,
                WorkloadId::Qry1,
                WorkloadId::Qry17,
                WorkloadId::Qry17,
            ],
            PrefetcherKind::None,
        );
        let first = runner.metrics_mixed(&spec);
        let second = runner.metrics_mixed(&spec);
        assert_eq!(runner.runs_executed(), 1);
        assert_eq!(first.elapsed_cycles, second.elapsed_cycles);
        assert_eq!(first.workload, "Qry1+Qry1+Qry17+Qry17");
    }

    #[test]
    fn metrics_are_cached() {
        let runner = Runner::new(Scale::Smoke, 2);
        let spec = RunSpec::base(WorkloadId::Qry1, PrefetcherKind::None);
        let first = runner.metrics(&spec);
        let second = runner.metrics(&spec);
        assert_eq!(runner.runs_executed(), 1);
        assert_eq!(first.elapsed_cycles, second.elapsed_cycles);
    }

    #[test]
    fn prefetch_runs_each_spec_once() {
        let runner = Runner::new(Scale::Smoke, 4);
        let specs = vec![
            RunSpec::base(WorkloadId::Qry1, PrefetcherKind::None),
            RunSpec::base(WorkloadId::Qry1, PrefetcherKind::sms_8_11a()),
            RunSpec::base(WorkloadId::Qry1, PrefetcherKind::None),
        ];
        runner.prefetch(&specs);
        assert_eq!(runner.runs_executed(), 2);
        runner.prefetch(&specs);
        assert_eq!(runner.runs_executed(), 2);
    }
}
