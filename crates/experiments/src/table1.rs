//! Table 1: the simulated system configuration.

use crate::report::Table;
use pv_mem::HierarchyConfig;
use pv_sim::CoreConfig;
use pv_sms::SmsConfig;

/// Renders the system configuration used by every experiment next to the
/// values of the paper's Table 1.
pub fn report() -> String {
    let hierarchy = HierarchyConfig::paper_baseline(4);
    let core = CoreConfig::paper();
    let sms = SmsConfig::paper_1k_11a();
    let mut table = Table::new("Table 1 — base processor configuration");
    table.header(["Component", "Paper", "This reproduction"]);
    table.row([
        "Cores".to_owned(),
        "4x UltraSPARC III, 8-stage OoO, 8-wide, 4 GHz".to_owned(),
        format!(
            "4x trace-driven cores, retire width {:.1}, load/store/fetch exposure {:.2}/{:.2}/{:.2}",
            core.retire_width, core.load_exposure, core.store_exposure, core.fetch_exposure
        ),
    ]);
    table.row([
        "L1 I/D".to_owned(),
        "64KB, 4-way, 64B blocks, LRU, 2-cycle".to_owned(),
        format!(
            "{}KB, {}-way, {}B blocks, LRU, {}-cycle",
            hierarchy.l1d.size_bytes / 1024,
            hierarchy.l1d.ways,
            hierarchy.l1d.block_bytes,
            hierarchy.l1d.data_latency
        ),
    ]);
    table.row([
        "Unified L2".to_owned(),
        "8MB, 16-way, 8 banks, 64B blocks, LRU, 6/12-cycle tag/data".to_owned(),
        format!(
            "{}MB, {}-way, {}B blocks, LRU, {}/{}-cycle tag/data",
            hierarchy.l2.size_bytes / (1024 * 1024),
            hierarchy.l2.ways,
            hierarchy.l2.block_bytes,
            hierarchy.l2.tag_latency,
            hierarchy.l2.data_latency
        ),
    ]);
    table.row([
        "Main memory".to_owned(),
        "3GB, 400 cycles".to_owned(),
        format!(
            "{}GB, {} cycles",
            hierarchy.dram.capacity_bytes / (1024 * 1024 * 1024),
            hierarchy.dram.latency
        ),
    ]);
    table.row([
        "Instruction prefetcher".to_owned(),
        "next-line per core".to_owned(),
        format!("next-line per core: {}", hierarchy.next_line_iprefetch),
    ]);
    table.row([
        "SMS AGT".to_owned(),
        "64-entry accumulation + 32-entry filter, 32-block regions".to_owned(),
        format!(
            "{}-entry accumulation + {}-entry filter, {}-block regions",
            sms.accumulation_entries, sms.filter_entries, sms.region_blocks
        ),
    ]);
    table.note(
        "The OoO core is replaced by a trace-driven model (see DESIGN.md); every memory-system parameter matches Table 1.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_mentions_every_level() {
        let report = super::report();
        for needle in [
            "L1 I/D",
            "Unified L2",
            "Main memory",
            "8MB",
            "400 cycles",
            "64-entry",
        ] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }
}
