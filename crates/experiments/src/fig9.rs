//! Figure 9: performance of the virtualized predictor.
//!
//! Speedup over the no-prefetch baseline for SMS with a 1K-set dedicated
//! PHT, the two small dedicated PHTs, and the virtualized SMS-PV8. The
//! paper's headline result: SMS-PV8 matches SMS-1K (19% vs 18% average
//! speedup) while the small dedicated tables achieve only about half.

use crate::report::{pct, Table};
use crate::runner::{RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// One workload's Figure 9 bars.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Workload name.
    pub workload: String,
    /// Speedup of each configuration over the no-prefetch baseline, in the
    /// order of [`configurations`].
    pub speedups: Vec<f64>,
}

/// The configurations compared in Figure 9, in the paper's order.
pub fn configurations() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_16_11a(),
        PrefetcherKind::sms_8_11a(),
        PrefetcherKind::sms_pv8(),
    ]
}

/// Runs the speedup comparison for every workload.
pub fn rows(runner: &Runner) -> Vec<Fig9Row> {
    rows_for(runner, &WorkloadId::all())
}

/// Runs the speedup comparison for a subset of workloads.
pub fn rows_for(runner: &Runner, workloads: &[WorkloadId]) -> Vec<Fig9Row> {
    let mut specs: Vec<RunSpec> = Vec::new();
    for &workload in workloads {
        specs.push(RunSpec::base(workload, PrefetcherKind::None));
        for config in configurations() {
            specs.push(RunSpec::base(workload, config));
        }
    }
    runner.prefetch(&specs);
    workloads
        .iter()
        .map(|&workload| {
            let baseline = runner.metrics(&RunSpec::base(workload, PrefetcherKind::None));
            let speedups = configurations()
                .into_iter()
                .map(|config| {
                    runner.metrics(&RunSpec::base(workload, config)).speedup_over(&baseline)
                })
                .collect();
            Fig9Row {
                workload: workload.name().to_owned(),
                speedups,
            }
        })
        .collect()
}

/// Renders the Figure 9 report.
pub fn report(runner: &Runner) -> String {
    let rows = rows(runner);
    let mut table = Table::new("Figure 9 — speedup over the no-prefetch baseline");
    table.header(["Workload", "SMS-1K", "SMS-16", "SMS-8", "SMS-PV8"]);
    let mut sums = [0.0; 4];
    for row in &rows {
        for (i, s) in row.speedups.iter().enumerate() {
            sums[i] += s;
        }
        table.row([
            row.workload.clone(),
            pct(row.speedups[0]),
            pct(row.speedups[1]),
            pct(row.speedups[2]),
            pct(row.speedups[3]),
        ]);
    }
    let n = rows.len().max(1) as f64;
    table.row([
        "Average".to_owned(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
    ]);
    table.note(
        "Paper shape: SMS-PV8 matches SMS-1K (19% vs 18% average), the small dedicated tables reach only about \
         half of that, and Apache gains nothing from the small tables. Absolute speedups here are larger than \
         the paper's because the trace-driven cores expose more of each miss's latency (see EXPERIMENTS.md).",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_configurations_in_paper_order() {
        let labels: Vec<String> = configurations().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec!["SMS-1K-11a", "SMS-16-11a", "SMS-8-11a", "SMS-PV8"]
        );
    }
}
