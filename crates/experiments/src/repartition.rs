//! Dynamic PV-region repartitioning: does capacity-follows-demand beat a
//! frozen split when the workload moves?
//!
//! The cohabitation experiment sizes the PV region for both tables (128 KB
//! per core) and never moves the boundary. This experiment runs the pair
//! *scarce* — the paper-default 64 KB region, half of each table backed —
//! and compares two arms under the PR-6 non-stationary scenarios:
//!
//! * **static** (`SMS+Markov-shPV8-scarce`): the even block-aligned split,
//!   frozen for the whole run (`step_blocks == 0`);
//! * **dynamic** (`SMS+Markov-shPV8-dyn`): the same starting split, with
//!   the per-core [`pv_sim::RepartitionController`] moving blocks toward
//!   whichever table shows more PVC$ misses per backed block at each
//!   window edge.
//!
//! Both arms run **cold** — the usual warm-up records are folded into the
//! measurement window — because the whole point is the transient: starting
//! from the deliberately wrong even split, the capacity trace shows every
//! boundary move of the re-convergence, and "epochs to re-converge" is the
//! window of the last move against the total windows observed. (A warmed-up
//! run hides the transient: the controller converges during warm-up and the
//! measured trace is empty.)
//!
//! The report shows per-table PVC$ hit rates (unbacked lookups count as
//! misses, so the hit rate reflects the allocation), the number of boundary
//! moves, and how quickly the plan settles — a controller that converged
//! stops moving well before the run ends.

use crate::report::{pct, Table};
use crate::runner::{HierarchyVariant, Runner, Scale, ScenarioSpec};
use crate::scenarios::flip_period;
use pv_mem::{ContentionModel, HierarchyConfig};
use pv_sim::{run_streams, PrefetcherKind, RunMetrics, SimConfig};
use pv_trace::Scenario;
use pv_workloads::WorkloadId;

/// PV bytes reserved per core: deliberately half of what the two 64 KB
/// tables would need — scarcity is the point of repartitioning.
pub const PV_BYTES_PER_CORE: u64 = 64 * 1024;

/// The scarce hierarchy both arms run under (for [`Runner`]-cached specs;
/// the report's own cold runs build the equivalent [`HierarchyConfig`]
/// directly).
pub fn scarce_hierarchy() -> HierarchyVariant {
    HierarchyVariant::PvRegion {
        bytes_per_core: PV_BYTES_PER_CORE,
        contention: ContentionModel::Ideal,
    }
}

/// The static control arm: the even split, frozen.
pub fn static_arm() -> PrefetcherKind {
    PrefetcherKind::composite_shared_scarce(8)
}

/// The dynamic arm: the same split plus the feedback controller.
pub fn dynamic_arm() -> PrefetcherKind {
    PrefetcherKind::composite_shared_dynamic(8)
}

/// The non-stationary scenarios the arms are compared on: the Qry2 ⇄ Db2
/// phase flip (the two stationary workloads whose converged splits sit the
/// furthest apart, so the equilibrium boundary moves when the phase does)
/// and the Oracle flash crowd (demand spikes, then relaxes).
pub fn scenarios(scale: Scale) -> Vec<Scenario> {
    let period = flip_period(scale);
    vec![
        Scenario::PhaseFlip {
            a: WorkloadId::Qry2,
            b: WorkloadId::Db2,
            period,
        },
        Scenario::FlashCrowd {
            workload: WorkloadId::Oracle,
            calm: period,
            spike: period / 2,
            intensity_pct: 250,
        },
    ]
}

/// The full spec grid — every scenario under both arms — as
/// [`Runner`]-cacheable specs (warmed-up runs; the fleet axis and the
/// determinism tests go through these).
pub fn specs(scale: Scale) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for scenario in scenarios(scale) {
        for prefetcher in [static_arm(), dynamic_arm()] {
            specs.push(ScenarioSpec {
                scenario,
                prefetcher,
                hierarchy: scarce_hierarchy(),
            });
        }
    }
    specs
}

/// The cold configuration one arm runs: the scale's record budget with the
/// warm-up folded into measurement, on the scarce region.
fn cold_config(scale: Scale, kind: PrefetcherKind) -> SimConfig {
    let mut config = scale.config(kind);
    config.measure_records += config.warmup_records;
    config.warmup_records = 0;
    let cores = config.cores;
    config.with_hierarchy(
        HierarchyConfig::paper_baseline(cores).with_pv_bytes_per_core(PV_BYTES_PER_CORE),
    )
}

/// Runs one arm cold on `scenario` and returns its metrics.
pub fn run_arm(scale: Scale, scenario: Scenario, kind: PrefetcherKind) -> RunMetrics {
    let config = cold_config(scale, kind);
    let streams = scenario.build_streams(config.cores, config.seed);
    run_streams(&config, streams)
}

/// One comparison row.
#[derive(Debug, Clone)]
pub struct RepartitionRow {
    /// Scenario name.
    pub scenario: String,
    /// Configuration label (`"…-scarce"` / `"…-dyn"`).
    pub config: String,
    /// Aggregate IPC.
    pub ipc: f64,
    /// Prefetch coverage.
    pub coverage: f64,
    /// Per-table PVC$ hit rates (`label → ratio`).
    pub table_hit_rates: Vec<(String, f64)>,
    /// Completed controller windows, summed over cores.
    pub windows: u64,
    /// Boundary moves, summed over cores.
    pub replans: u64,
    /// Window of the last boundary move any core made (0 = never moved) —
    /// the epochs-to-reconverge figure.
    pub settle_window: u64,
    /// Shared-cache entries invalidated by boundary moves.
    pub invalidated: u64,
    /// Mean backed blocks per table per core at the end of the run.
    pub backed_per_core: Vec<u64>,
}

/// Runs the grid cold and gathers one row per (scenario, arm).
pub fn rows(runner: &Runner) -> Vec<RepartitionRow> {
    let scale = runner.scale();
    let runs: Vec<(Scenario, PrefetcherKind)> = scenarios(scale)
        .into_iter()
        .flat_map(|scenario| [(scenario, static_arm()), (scenario, dynamic_arm())])
        .collect();
    let metrics: Vec<RunMetrics> = std::thread::scope(|scope| {
        let handles: Vec<_> = runs
            .iter()
            .map(|(scenario, kind)| scope.spawn(move || run_arm(scale, *scenario, kind.clone())))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("simulation thread panicked"))
            .collect()
    });
    runs.iter()
        .zip(&metrics)
        .map(|((scenario, _), metrics)| {
            let cores = metrics.per_core_ipc.len().max(1) as u64;
            let repartition = metrics.repartition.as_ref().expect("both arms carry a controller");
            RepartitionRow {
                scenario: scenario.name(),
                config: metrics.configuration.clone(),
                ipc: metrics.aggregate_ipc(),
                coverage: metrics.coverage.coverage(),
                table_hit_rates: metrics
                    .pv_tables
                    .iter()
                    .map(|t| (t.label.clone(), t.stats.pvcache_hit_ratio()))
                    .collect(),
                windows: repartition.windows,
                replans: repartition.replans,
                settle_window: repartition.last_replan_window(),
                invalidated: repartition.invalidated_entries,
                backed_per_core: repartition.final_backed.iter().map(|b| b / cores).collect(),
            }
        })
        .collect()
}

/// Renders the repartitioning report.
pub fn report(runner: &Runner) -> String {
    let mut table = Table::new(format!(
        "Dynamic PV-region repartitioning — static vs utility-driven boundaries on a scarce \
         {} KB/core region (cold start: the capacity transient is the experiment)",
        PV_BYTES_PER_CORE / 1024
    ));
    table.header([
        "Scenario",
        "Config",
        "IPC",
        "Coverage",
        "PVC$ hit rates",
        "Backed/core",
        "Windows",
        "Replans",
        "Last move (win)",
        "Invalidated",
    ]);
    for row in rows(runner) {
        let hit_rates = row
            .table_hit_rates
            .iter()
            .map(|(label, ratio)| format!("{label} {}", pct(*ratio)))
            .collect::<Vec<_>>()
            .join(", ");
        let backed =
            row.backed_per_core.iter().map(|b| b.to_string()).collect::<Vec<_>>().join("+");
        table.row([
            row.scenario,
            row.config,
            format!("{:.3}", row.ipc),
            pct(row.coverage),
            hit_rates,
            backed,
            row.windows.to_string(),
            row.replans.to_string(),
            row.settle_window.to_string(),
            row.invalidated.to_string(),
        ]);
    }
    table.note(
        "Both arms start cold from the same even block-aligned split of a region too small for \
         both tables (unbacked lookups count as PVC$ misses, so hit rates reflect the \
         allocation). The dynamic arm moves blocks toward the table with more misses per backed \
         block at window edges, gated by a hysteresis dead band, a two-window confirmation \
         streak, a per-table floor and an overshoot look-ahead; boundary moves only invalidate \
         the metadata cache entries whose backing block migrated — contents are write-through, \
         so no data is ever copied. 'Last move' against 'Windows' (per core: divide by the core \
         count) is the re-convergence figure: a controller that converged stops moving.",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunSpec;

    fn hit_rate(metrics: &RunMetrics, label: &str) -> f64 {
        metrics
            .pv_tables
            .iter()
            .find(|t| t.label == label)
            .expect("cohabiting runs report both tables")
            .stats
            .pvcache_hit_ratio()
    }

    /// The acceptance pin: starting from the wrong (even) split, the
    /// controller shifts capacity toward the hot table across the phase
    /// flip, beats the frozen split's hit rate there, and settles instead
    /// of thrashing.
    #[test]
    fn the_controller_shifts_capacity_toward_the_hot_table_across_the_flip() {
        let flip = scenarios(Scale::Smoke)[0];
        let (frozen, dynamic) = std::thread::scope(|scope| {
            let frozen = scope.spawn(|| run_arm(Scale::Smoke, flip, static_arm()));
            let dynamic = scope.spawn(|| run_arm(Scale::Smoke, flip, dynamic_arm()));
            (frozen.join().unwrap(), dynamic.join().unwrap())
        });

        let repartition = dynamic.repartition.as_ref().expect("controller metrics");
        assert!(
            repartition.replans > 0,
            "imbalanced table pressure must move the boundary"
        );
        // The hot table ended with more than its even share (512 blocks per
        // core); the controller must have given it capacity.
        let cores = dynamic.per_core_ipc.len() as u64;
        let even_share = cores * 512;
        let hot = if repartition.final_backed[0] >= repartition.final_backed[1] {
            0
        } else {
            1
        };
        assert!(
            repartition.final_backed[hot] > even_share,
            "the hot table must end above the even split ({:?})",
            repartition.final_backed
        );
        // …and beat the frozen split's PVC$ hit rate on that table.
        let label = &dynamic.pv_tables[hot].label;
        assert!(
            hit_rate(&dynamic, label) > hit_rate(&frozen, label),
            "dynamic must beat static on the newly-hot table {label}: {:.4} vs {:.4}",
            hit_rate(&dynamic, label),
            hit_rate(&frozen, label)
        );
        // Bounded re-convergence: every move happens in the first half of
        // the run — the split matches the demand long before the end.
        let windows_per_core = repartition.windows / cores;
        assert!(
            repartition.last_replan_window() <= windows_per_core / 2,
            "the controller must settle: last move at window {} of {}",
            repartition.last_replan_window(),
            windows_per_core
        );
        // The frozen arm ran under identical scarcity and never moved.
        let control = frozen.repartition.as_ref().expect("controller metrics");
        assert_eq!(control.replans, 0);
    }

    /// A stationary workload settles during warm-up: zero boundary moves in
    /// the measurement window.
    #[test]
    fn a_stable_workload_triggers_no_replans_after_warm_up() {
        let runner = Runner::new(Scale::Smoke, 2);
        let spec = RunSpec {
            workload: WorkloadId::Apache,
            prefetcher: dynamic_arm(),
            hierarchy: scarce_hierarchy(),
        };
        let metrics = runner.metrics(&spec);
        let repartition = metrics.repartition.as_ref().expect("controller metrics");
        assert!(repartition.windows > 0);
        assert_eq!(
            repartition.replans, 0,
            "a stationary workload must not move the boundary after warm-up \
             (trace: {:?})",
            repartition.plan_trace
        );
    }

    /// Replanning is driven by access counts, never wall-clock: the dynamic
    /// arm produces bit-identical digests and controller metrics whether the
    /// runner fans out over one thread or eight.
    #[test]
    fn dynamic_runs_are_deterministic_across_runner_thread_counts() {
        let spec = ScenarioSpec {
            scenario: scenarios(Scale::Smoke)[0],
            prefetcher: dynamic_arm(),
            hierarchy: scarce_hierarchy(),
        };
        let one = Runner::new(Scale::Smoke, 1);
        let eight = Runner::new(Scale::Smoke, 8);
        one.prefetch_scenarios(std::slice::from_ref(&spec));
        eight.prefetch_scenarios(std::slice::from_ref(&spec));
        let a = one.metrics_scenario(&spec);
        let b = eight.metrics_scenario(&spec);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.repartition, b.repartition);
    }

    #[test]
    fn the_grid_crosses_scenarios_with_both_arms() {
        let specs = specs(Scale::Smoke);
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().all(|s| s.prefetcher.is_repartitioned()));
        assert_eq!(
            specs.iter().filter(|s| s.prefetcher == dynamic_arm()).count(),
            2
        );
    }
}
