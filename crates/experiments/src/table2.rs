//! Table 2: the simulated workloads.

use crate::report::Table;
use pv_workloads::paper_workloads;

/// Renders the eight synthetic workload models together with the headline
/// parameters that govern their behaviour.
pub fn report() -> String {
    let mut table =
        Table::new("Table 2 — workloads (synthetic models of the paper's commercial workloads)");
    table.header([
        "Workload",
        "Models",
        "Trigger contexts",
        "Pattern density",
        "Irregular accesses",
        "Data footprint",
    ]);
    for (_, params) in paper_workloads() {
        table.row([
            params.name.clone(),
            params.description.clone(),
            params.contexts.to_string(),
            format!("{:.0}%", params.pattern_density * 100.0),
            format!("{:.0}%", params.irregular_fraction * 100.0),
            format!("{} MB", params.data_footprint_bytes() / (1024 * 1024)),
        ]);
    }
    table.note(
        "Real TPC-C/TPC-H/SPECweb deployments cannot be shipped; these generators reproduce the statistical \
         structure the SMS prefetcher and PV depend on (see DESIGN.md section 2).",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_lists_all_eight_workloads() {
        let report = super::report();
        for name in [
            "Apache", "Zeus", "DB2", "Oracle", "Qry1", "Qry2", "Qry16", "Qry17",
        ] {
            assert!(report.contains(name), "missing workload {name}");
        }
    }
}
