//! Figure 7: impact of virtualization on off-chip bandwidth, split into L2
//! misses and L2 write-backs, for PV-8 and PV-16.

use crate::report::{pct, Table};
use crate::runner::{RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// One bar group of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Workload name.
    pub workload: String,
    /// Virtualized configuration (`PV-8`/`PV-16`).
    pub config: String,
    /// Increase in L2 misses relative to the non-virtualized SMS baseline's
    /// total off-chip traffic.
    pub miss_increase: f64,
    /// Increase in L2 write-backs relative to the same baseline traffic.
    pub writeback_increase: f64,
}

impl Fig7Row {
    /// Total off-chip bandwidth increase.
    pub fn total_increase(&self) -> f64 {
        self.miss_increase + self.writeback_increase
    }
}

/// Runs the comparison for every workload and both PVCache sizes.
pub fn rows(runner: &Runner) -> Vec<Fig7Row> {
    let configs = [PrefetcherKind::sms_pv8(), PrefetcherKind::sms_pv16()];
    let mut specs: Vec<RunSpec> = Vec::new();
    for &workload in &WorkloadId::all() {
        specs.push(RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
        for config in &configs {
            specs.push(RunSpec::base(workload, config.clone()));
        }
    }
    runner.prefetch(&specs);
    let mut rows = Vec::new();
    for &workload in &WorkloadId::all() {
        let dedicated = runner.metrics(&RunSpec::base(workload, PrefetcherKind::sms_1k_11a()));
        let base_offchip = dedicated.offchip_blocks().max(1) as f64;
        for config in &configs {
            let virtualized = runner.metrics(&RunSpec::base(workload, config.clone()));
            let miss_delta = virtualized.hierarchy.l2_misses.total() as f64
                - dedicated.hierarchy.l2_misses.total() as f64;
            let writeback_delta = virtualized.hierarchy.l2_writebacks.total() as f64
                - dedicated.hierarchy.l2_writebacks.total() as f64;
            rows.push(Fig7Row {
                workload: workload.name().to_owned(),
                config: config.label().replace("SMS-", ""),
                miss_increase: miss_delta / base_offchip,
                writeback_increase: writeback_delta / base_offchip,
            });
        }
    }
    rows
}

/// Renders the Figure 7 report.
pub fn report(runner: &Runner) -> String {
    let rows = rows(runner);
    let mut table = Table::new("Figure 7 — off-chip bandwidth increase due to virtualization");
    table.header([
        "Workload",
        "PVCache",
        "L2 miss increase",
        "L2 writeback increase",
        "Total",
    ]);
    let mut total = 0.0;
    let mut count = 0;
    for row in &rows {
        if row.config == "PV8" {
            total += row.total_increase();
            count += 1;
        }
        table.row([
            row.workload.clone(),
            row.config.clone(),
            pct(row.miss_increase),
            pct(row.writeback_increase),
            pct(row.total_increase()),
        ]);
    }
    table.note(format!(
        "Measured PV-8 average off-chip increase: {} (paper: 3.3% on average, at most 6.5%; miss increases \
         under 3% and write-back increases under 3.2% for every workload).",
        pct(total / count.max(1) as f64)
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_components() {
        let row = Fig7Row {
            workload: "x".into(),
            config: "PV8".into(),
            miss_increase: 0.01,
            writeback_increase: 0.02,
        };
        assert!((row.total_increase() - 0.03).abs() < 1e-12);
    }
}
