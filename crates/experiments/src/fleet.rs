//! Fleet sweeps: a work-stealing driver that expands configuration grids
//! into independent simulations and drains them over worker threads.
//!
//! The reproduction harness ([`Runner`](crate::Runner)) answers "what are
//! the paper's numbers?" — a fixed set of specs per figure. Fleet sweeps
//! answer the open-ended question "how does the whole design space behave?":
//! the cartesian product of prefetcher kinds × workloads (homogeneous,
//! mixed, or non-stationary scenarios) × DRAM bandwidth points × throttling,
//! expanded up front and executed by however many host threads are
//! available. The `System` ownership refactor makes this trivial — a whole
//! simulation is `Send`, so points migrate freely between workers.
//!
//! Scheduling is work-stealing rather than a single shared queue feeding
//! fixed slices: points differ wildly in cost (a Markov run is several
//! times slower than the no-prefetch baseline; `Queued` contention costs
//! more than `Ideal`), so pre-partitioning would leave workers idle behind
//! the unlucky one. Each worker owns a deque seeded round-robin, pops from
//! the front, and steals from the *back* of a neighbour when its own runs
//! dry.
//!
//! Output is JSON Lines: one `{"type": "run", ...}` object per completed
//! point — streamed in completion order, carrying the configuration key,
//! the run's [`RunMetrics::digest`] and headline metrics but deliberately
//! **no timing**, so the sorted row set diffs byte-identically across
//! thread counts and hosts — and one final `{"type": "summary", ...}`
//! object where all the wall-clock throughput lives.

use crate::runner::Scale;
use parking_lot::Mutex;
use pv_mem::{ContentionModel, HierarchyConfig};
use pv_sim::{
    run_streams, run_workload, run_workload_mix, PrefetcherKind, RunMetrics, SimConfig,
    ThrottleConfig,
};
use pv_trace::Scenario;
use pv_workloads::WorkloadId;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::mpsc;
use std::time::Instant;

/// What the four cores run at one grid point.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetWorkload {
    /// Every core runs the same workload (the paper's methodology).
    Homogeneous(WorkloadId),
    /// Core `i` runs `workloads[i]` (heterogeneous multi-programming).
    Mix([WorkloadId; 4]),
    /// Every core runs its slice of a non-stationary scenario.
    Scenario(Scenario),
}

impl FleetWorkload {
    /// Machine-readable label, unique per workload selection (workload
    /// names, `+`-joined mixes, `Scenario::name` strings).
    pub fn label(&self) -> String {
        match self {
            FleetWorkload::Homogeneous(w) => w.name().to_owned(),
            FleetWorkload::Mix(ws) => {
                format!(
                    "mix:{}",
                    ws.iter().map(|w| w.name()).collect::<Vec<_>>().join("+")
                )
            }
            FleetWorkload::Scenario(s) => s.name(),
        }
    }
}

/// One point of a fleet sweep: a complete, independent simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPoint {
    /// The prefetcher every core uses (throttled kinds carry the policy).
    pub kind: PrefetcherKind,
    /// What the cores run.
    pub workload: FleetWorkload,
    /// DRAM data-bus cycles per 64-byte block. `0` selects the paper's
    /// `Ideal` fixed-latency model; any other value runs `Queued`
    /// contention at that bandwidth.
    pub cycles_per_transfer: u64,
}

impl FleetPoint {
    /// Stable configuration key: the row identity in JSONL output and the
    /// join column when diffing sweeps across thread counts.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|cpt{}",
            self.kind.label(),
            self.workload.label(),
            self.cycles_per_transfer
        )
    }

    fn config(&self, scale: Scale) -> SimConfig {
        let config = scale.config(self.kind.clone());
        let mut hierarchy = HierarchyConfig::paper_baseline(config.cores);
        if self.cycles_per_transfer > 0 {
            hierarchy = hierarchy
                .with_contention(ContentionModel::Queued)
                .with_dram_cycles_per_transfer(self.cycles_per_transfer);
        }
        // Cohabiting kinds hold two tables per core; grow the PV region to
        // fit (same rule the perfbench harness applies).
        let needed = self.kind.pv_bytes_per_core();
        if needed > hierarchy.pv_regions.bytes_per_core {
            hierarchy = hierarchy.with_pv_bytes_per_core(needed);
        }
        config.with_hierarchy(hierarchy)
    }

    /// Runs this point at `scale` and returns its metrics.
    pub fn run(&self, scale: Scale) -> RunMetrics {
        let config = self.config(scale);
        match &self.workload {
            FleetWorkload::Homogeneous(workload) => run_workload(&config, &workload.params()),
            FleetWorkload::Mix(workloads) => {
                let params: Vec<_> = workloads.iter().map(|w| w.params()).collect();
                run_workload_mix(&config, &params)
            }
            FleetWorkload::Scenario(scenario) => {
                let streams = scenario.build_streams(config.cores, config.seed);
                run_streams(&config, streams)
            }
        }
    }
}

/// The axes of a sweep, expanded to their cartesian product by
/// [`FleetGrid::points`].
#[derive(Debug, Clone)]
pub struct FleetGrid {
    /// Prefetcher kinds to sweep.
    pub kinds: Vec<PrefetcherKind>,
    /// Workload selections to sweep.
    pub workloads: Vec<FleetWorkload>,
    /// DRAM bandwidth points (`0` = `Ideal`, else `Queued` at that
    /// cycles-per-transfer).
    pub cycles_per_transfer: Vec<u64>,
    /// When set, every throttleable kind (anything but the no-prefetch
    /// baseline and already-throttled kinds) is *additionally* swept with
    /// the default feedback policy wrapped around it.
    pub throttle: bool,
}

impl FleetGrid {
    /// The default 64-point sweep: four representative kinds (baseline,
    /// virtualized SMS, virtualized Markov, and the shared-proxy composite)
    /// × four workloads × four bandwidth points, no throttle axis.
    pub fn default_grid() -> Self {
        FleetGrid {
            kinds: vec![
                PrefetcherKind::None,
                PrefetcherKind::sms_pv8(),
                PrefetcherKind::markov_pv8(),
                PrefetcherKind::composite_shared(8),
            ],
            workloads: vec![
                FleetWorkload::Homogeneous(WorkloadId::Apache),
                FleetWorkload::Homogeneous(WorkloadId::Db2),
                FleetWorkload::Homogeneous(WorkloadId::Qry1),
                FleetWorkload::Homogeneous(WorkloadId::Qry17),
            ],
            cycles_per_transfer: vec![0, 32, 64, 128],
            throttle: false,
        }
    }

    /// Expands the grid into its points, in a deterministic order
    /// (kind-major, then workload, then bandwidth; throttled variants
    /// follow their base kind).
    pub fn points(&self) -> Vec<FleetPoint> {
        let mut kinds = Vec::new();
        for kind in &self.kinds {
            kinds.push(kind.clone());
            if self.throttle && !matches!(kind, PrefetcherKind::None) && !kind.is_throttled() {
                kinds.push(kind.clone().throttled(ThrottleConfig::feedback_default()));
            }
        }
        let mut points = Vec::new();
        for kind in &kinds {
            for workload in &self.workloads {
                for &cycles_per_transfer in &self.cycles_per_transfer {
                    points.push(FleetPoint {
                        kind: kind.clone(),
                        workload: workload.clone(),
                        cycles_per_transfer,
                    });
                }
            }
        }
        points
    }
}

/// Wall-clock account of one sweep (everything the rows deliberately omit).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Points executed.
    pub points: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole sweep.
    pub seconds: f64,
    /// Completed runs per wall-clock second.
    pub runs_per_sec: f64,
}

/// One JSONL row: the point's key and headline results, no timing. Two
/// sweeps of the same grid must produce identical row sets regardless of
/// thread count — only the *order* of completion may differ.
fn run_row(point: &FleetPoint, metrics: &RunMetrics) -> String {
    format!(
        "{{\"type\": \"run\", \"key\": \"{}\", \"kind\": \"{}\", \"workload\": \"{}\", \
         \"cpt\": {}, \"throttled\": {}, \"digest\": \"{}\", \"ipc\": {:.6}, \
         \"l2_misses\": {}, \"offchip_blocks\": {}, \"prefetches_issued\": {}, \
         \"dropped_prefetches\": {}}}",
        point.key(),
        point.kind.label(),
        point.workload.label(),
        point.cycles_per_transfer,
        point.kind.is_throttled(),
        metrics.digest(),
        metrics.aggregate_ipc(),
        metrics.hierarchy.l2_misses.total(),
        metrics.offchip_blocks(),
        metrics.prefetches_issued,
        metrics.dropped_prefetches(),
    )
}

/// Runs every point at `scale` over `threads` work-stealing workers,
/// streaming one JSONL row per completed run into `sink` (completion
/// order) followed by a `{"type": "summary", ...}` footer with the
/// wall-clock throughput.
///
/// # Panics
///
/// Panics if `sink` rejects a write (fleet output is the binary's whole
/// product; there is nothing sensible to do with a dead sink).
pub fn run_fleet(
    points: Vec<FleetPoint>,
    scale: Scale,
    threads: usize,
    sink: &mut dyn Write,
) -> FleetSummary {
    let threads = threads.max(1).min(points.len().max(1));
    let start = Instant::now();

    // Round-robin the points over per-worker deques: neighbouring indices
    // (same kind, adjacent bandwidth) land on different workers, so the
    // expensive kinds spread out even before any stealing happens.
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, _) in points.iter().enumerate() {
        deques[index % threads].lock().push_back(index);
    }

    let (tx, rx) = mpsc::channel::<String>();
    let executed = std::thread::scope(|scope| {
        for me in 0..threads {
            let tx = tx.clone();
            let deques = &deques;
            let points = &points;
            scope.spawn(move || loop {
                // Own work from the front; steal from the *back* of the
                // next non-empty neighbour so thieves and owners contend
                // for opposite ends of a deque.
                let index = deques[me].lock().pop_front().or_else(|| {
                    (1..threads)
                        .find_map(|offset| deques[(me + offset) % threads].lock().pop_back())
                });
                let Some(index) = index else { break };
                let point = &points[index];
                let metrics = point.run(scale);
                if tx.send(run_row(point, &metrics)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // The scope's own thread is the writer: rows stream out as workers
        // complete them, not after the whole sweep.
        let mut executed = 0usize;
        for row in rx {
            writeln!(sink, "{row}").expect("fleet sink write failed");
            executed += 1;
        }
        executed
    });

    let seconds = start.elapsed().as_secs_f64();
    let summary = FleetSummary {
        points: executed,
        threads,
        seconds,
        runs_per_sec: if seconds > 0.0 {
            executed as f64 / seconds
        } else {
            0.0
        },
    };
    writeln!(
        sink,
        "{{\"type\": \"summary\", \"points\": {}, \"threads\": {}, \"seconds\": {:.3}, \
         \"runs_per_sec\": {:.2}}}",
        summary.points, summary.threads, summary.seconds, summary.runs_per_sec
    )
    .expect("fleet sink write failed");
    summary
}

/// Parses a prefetcher-kind name as the fleet CLI accepts it.
pub fn parse_kind(name: &str) -> Option<PrefetcherKind> {
    let (base, throttled) = match name.strip_suffix("-throttled") {
        Some(base) => (base, true),
        None => (name, false),
    };
    let kind = match base {
        "none" => PrefetcherKind::None,
        "sms-1k-16a" => PrefetcherKind::sms_1k_16a(),
        "sms-1k-11a" => PrefetcherKind::sms_1k_11a(),
        "sms-16-11a" => PrefetcherKind::sms_16_11a(),
        "sms-8-11a" => PrefetcherKind::sms_8_11a(),
        "sms-infinite" => PrefetcherKind::sms_infinite(),
        "sms-pv8" => PrefetcherKind::sms_pv8(),
        "sms-pv16" => PrefetcherKind::sms_pv16(),
        "markov-1k" => PrefetcherKind::markov_1k(),
        "markov-pv8" => PrefetcherKind::markov_pv8(),
        "composite-dedicated4" => PrefetcherKind::composite_dedicated(4),
        "composite-shared8" => PrefetcherKind::composite_shared(8),
        "composite-shared8-dyn" => PrefetcherKind::composite_shared_dynamic(8),
        "composite-shared8-scarce" => PrefetcherKind::composite_shared_scarce(8),
        _ => return None,
    };
    if throttled {
        if matches!(kind, PrefetcherKind::None) {
            return None;
        }
        Some(kind.throttled(ThrottleConfig::feedback_default()))
    } else {
        Some(kind)
    }
}

/// The kind names [`parse_kind`] accepts (base forms; every one but `none`
/// also accepts a `-throttled` suffix).
pub fn kind_names() -> &'static [&'static str] {
    &[
        "none",
        "sms-1k-16a",
        "sms-1k-11a",
        "sms-16-11a",
        "sms-8-11a",
        "sms-infinite",
        "sms-pv8",
        "sms-pv16",
        "markov-1k",
        "markov-pv8",
        "composite-dedicated4",
        "composite-shared8",
        "composite-shared8-dyn",
        "composite-shared8-scarce",
    ]
}

/// Parses a workload name (case-insensitive) as the fleet CLI accepts it.
pub fn parse_workload(name: &str) -> Option<WorkloadId> {
    WorkloadId::all().into_iter().find(|w| w.name().eq_ignore_ascii_case(name))
}

/// The default scenario points the `--scenarios` flag adds: the throttle
/// re-convergence flip plus the characterisation set, scaled to the sweep's
/// scale so each phase spans several accuracy epochs.
pub fn default_scenarios(scale: Scale) -> Vec<FleetWorkload> {
    let mut scenarios = vec![crate::scenarios::throttle_flip(scale)];
    scenarios.extend(crate::scenarios::characterisation_scenarios(scale));
    scenarios.into_iter().map(FleetWorkload::Scenario).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_expands_to_64_points() {
        let points = FleetGrid::default_grid().points();
        assert_eq!(points.len(), 64);
        // Every key is unique — the join column must never alias.
        let keys: std::collections::HashSet<String> = points.iter().map(|p| p.key()).collect();
        assert_eq!(keys.len(), 64);
    }

    #[test]
    fn throttle_axis_adds_points_for_throttleable_kinds_only() {
        let mut grid = FleetGrid::default_grid();
        grid.throttle = true;
        // None is not throttleable; the other three kinds double up.
        assert_eq!(grid.points().len(), (4 + 3) * 4 * 4);
        assert!(grid.points().iter().any(|p| p.kind.is_throttled()));
    }

    #[test]
    fn kind_names_round_trip_through_the_parser() {
        for name in kind_names() {
            assert!(parse_kind(name).is_some(), "{name} must parse");
        }
        assert_eq!(parse_kind("sms-pv8").unwrap().label(), "SMS-PV8");
        assert!(parse_kind("sms-pv8-throttled").unwrap().is_throttled());
        assert!(parse_kind("none-throttled").is_none());
        assert!(parse_kind("warp-drive").is_none());
        let dynamic = parse_kind("composite-shared8-dyn").unwrap();
        assert_eq!(dynamic.label(), "SMS+Markov-shPV8-dyn");
        assert!(dynamic.is_repartitioned());
        assert_eq!(
            parse_kind("composite-shared8-scarce").unwrap().label(),
            "SMS+Markov-shPV8-scarce"
        );
        let both = parse_kind("composite-shared8-dyn-throttled").unwrap();
        assert!(both.is_throttled() && both.is_repartitioned());
    }

    /// Satellite determinism pin: the sorted row set of a sweep that
    /// includes the dynamic repartitioning kind is byte-identical across
    /// thread counts — replanning happens at deterministic window edges,
    /// never on wall-clock state.
    #[test]
    fn dynamic_kind_rows_are_identical_across_thread_counts() {
        let points = vec![
            FleetPoint {
                kind: parse_kind("composite-shared8-dyn").unwrap(),
                workload: FleetWorkload::Homogeneous(WorkloadId::Qry1),
                cycles_per_transfer: 0,
            },
            FleetPoint {
                kind: parse_kind("composite-shared8-scarce").unwrap(),
                workload: FleetWorkload::Homogeneous(WorkloadId::Qry1),
                cycles_per_transfer: 0,
            },
            FleetPoint {
                kind: parse_kind("composite-shared8-dyn").unwrap(),
                workload: FleetWorkload::Homogeneous(WorkloadId::Apache),
                cycles_per_transfer: 64,
            },
            FleetPoint {
                kind: PrefetcherKind::None,
                workload: FleetWorkload::Homogeneous(WorkloadId::Apache),
                cycles_per_transfer: 64,
            },
        ];
        let sorted_rows = |threads: usize| {
            let mut out = Vec::new();
            run_fleet(points.clone(), Scale::Smoke, threads, &mut out);
            let text = String::from_utf8(out).unwrap();
            let mut rows: Vec<String> = text
                .lines()
                .filter(|l| l.starts_with("{\"type\": \"run\""))
                .map(str::to_owned)
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(sorted_rows(1), sorted_rows(4));
    }

    #[test]
    fn workload_names_parse_case_insensitively() {
        assert_eq!(parse_workload("apache"), Some(WorkloadId::Apache));
        assert_eq!(parse_workload("Qry17"), Some(WorkloadId::Qry17));
        assert_eq!(parse_workload("fortran"), None);
    }

    #[test]
    fn cpt_zero_is_ideal_and_nonzero_is_queued() {
        let ideal = FleetPoint {
            kind: PrefetcherKind::None,
            workload: FleetWorkload::Homogeneous(WorkloadId::Qry1),
            cycles_per_transfer: 0,
        };
        let queued = FleetPoint {
            cycles_per_transfer: 64,
            ..ideal.clone()
        };
        assert_eq!(
            ideal.config(Scale::Smoke).hierarchy.contention,
            ContentionModel::Ideal
        );
        let queued_config = queued.config(Scale::Smoke);
        assert_eq!(queued_config.hierarchy.contention, ContentionModel::Queued);
        assert_eq!(queued_config.hierarchy.dram.cycles_per_transfer, 64);
        assert_eq!(queued.key(), "NoPrefetch|Qry1|cpt64");
    }

    #[test]
    fn fleet_streams_one_row_per_point_plus_a_summary() {
        let points = vec![
            FleetPoint {
                kind: PrefetcherKind::None,
                workload: FleetWorkload::Homogeneous(WorkloadId::Qry1),
                cycles_per_transfer: 0,
            },
            FleetPoint {
                kind: PrefetcherKind::sms_8_11a(),
                workload: FleetWorkload::Homogeneous(WorkloadId::Qry1),
                cycles_per_transfer: 0,
            },
        ];
        let mut out = Vec::new();
        let summary = run_fleet(points, Scale::Smoke, 2, &mut out);
        assert_eq!(summary.points, 2);
        let text = String::from_utf8(out).unwrap();
        let runs: Vec<&str> =
            text.lines().filter(|l| l.starts_with("{\"type\": \"run\"")).collect();
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|l| l.contains("\"digest\": \"cycles=")));
        assert!(
            text.lines().last().unwrap().starts_with("{\"type\": \"summary\""),
            "summary must be the footer"
        );
    }

    #[test]
    fn mixes_and_scenarios_have_distinct_labels() {
        let mix = FleetWorkload::Mix([
            WorkloadId::Apache,
            WorkloadId::Db2,
            WorkloadId::Qry1,
            WorkloadId::Qry17,
        ]);
        assert_eq!(mix.label(), "mix:Apache+DB2+Qry1+Qry17");
        for scenario in default_scenarios(Scale::Smoke) {
            assert!(!scenario.label().is_empty());
        }
    }
}
