//! Figure 4: SMS performance potential as a function of PHT configuration.
//!
//! The paper plots, for every workload and PHT geometry, the percentage of
//! L1 read misses that are covered, uncovered, and over-predicted. The
//! result motivating PV is that large tables (Infinite, 1K sets) are needed
//! to reach the prefetcher's potential and small dedicated tables (16 or 8
//! sets) lose most of it.

use crate::report::{pct, Table};
use crate::runner::{RunSpec, Runner};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

/// One bar of Figure 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Workload name.
    pub workload: String,
    /// PHT configuration label.
    pub config: String,
    /// Fraction of baseline L1 read misses covered by prefetching.
    pub covered: f64,
    /// Fraction left uncovered.
    pub uncovered: f64,
    /// Over-predictions as a fraction of baseline misses.
    pub overpredictions: f64,
}

/// The PHT configurations of Figure 4, in the paper's order.
pub fn configurations() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::sms_infinite(),
        PrefetcherKind::sms_1k_16a(),
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_16_11a(),
        PrefetcherKind::sms_8_11a(),
    ]
}

/// Runs the Figure 4 sweep and returns one row per (workload, configuration).
pub fn rows(runner: &Runner) -> Vec<Fig4Row> {
    rows_for(runner, &WorkloadId::all())
}

/// Runs the sweep for a subset of workloads (used by the benches).
pub fn rows_for(runner: &Runner, workloads: &[WorkloadId]) -> Vec<Fig4Row> {
    let specs: Vec<RunSpec> = workloads
        .iter()
        .flat_map(|&workload| {
            configurations()
                .into_iter()
                .map(move |prefetcher| RunSpec::base(workload, prefetcher))
        })
        .collect();
    runner.prefetch(&specs);
    specs
        .iter()
        .map(|spec| {
            let metrics = runner.metrics(spec);
            Fig4Row {
                workload: spec.workload.name().to_owned(),
                config: spec.prefetcher.label().replace("SMS-", ""),
                covered: metrics.coverage.coverage(),
                uncovered: 1.0 - metrics.coverage.coverage(),
                overpredictions: metrics.coverage.overprediction_ratio(),
            }
        })
        .collect()
}

/// Renders the Figure 4 report.
pub fn report(runner: &Runner) -> String {
    let mut table = Table::new("Figure 4 — SMS performance potential (fraction of L1 read misses)");
    table.header([
        "Workload",
        "PHT config",
        "Covered",
        "Uncovered",
        "Overpredictions",
    ]);
    for row in rows(runner) {
        table.row([
            row.workload,
            row.config,
            pct(row.covered),
            pct(row.uncovered),
            pct(row.overpredictions),
        ]);
    }
    table.note(
        "Paper shape: Infinite ≈ 1K-16a ≈ 1K-11a (within 3%), while 16-11a and 8-11a lose most coverage for \
         the web/OLTP workloads and degrade gently for the DSS queries (e.g. Oracle 44% -> <4%, Qry1 73% -> 62%).",
    );
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_uses_the_paper_configurations() {
        let labels: Vec<String> = configurations().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "SMS-Infinite",
                "SMS-1K-16a",
                "SMS-1K-11a",
                "SMS-16-11a",
                "SMS-8-11a"
            ]
        );
    }

    #[test]
    fn smoke_rows_have_consistent_fractions() {
        let runner = Runner::new(crate::Scale::Smoke, 4);
        let rows = rows_for(&runner, &[WorkloadId::Qry1]);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!((row.covered + row.uncovered - 1.0).abs() < 1e-9);
            assert!(row.covered >= 0.0 && row.covered <= 1.0);
        }
        // Large tables must beat the 8-set table on the scan workload.
        let infinite = rows.iter().find(|r| r.config == "Infinite").unwrap();
        let tiny = rows.iter().find(|r| r.config == "8-11a").unwrap();
        assert!(infinite.covered > tiny.covered);
    }
}
