//! Shared helpers for the example binaries.
