//! Workload explorer: prints, for one workload (or all of them), how SMS
//! prefetch coverage and performance react to the PHT configuration —
//! the interactive companion to Figures 4, 5 and 9 of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pv-examples --bin workload_explorer [workload] [quick|full]
//! ```
//!
//! `workload` is one of Apache, Zeus, DB2, Oracle, Qry1, Qry2, Qry16, Qry17
//! (default: Oracle).

use pv_sim::{run_workload, PrefetcherKind, SimConfig};
use pv_workloads::WorkloadId;

fn parse_workload(name: &str) -> Option<WorkloadId> {
    WorkloadId::all().into_iter().find(|w| w.name().eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args.get(1).and_then(|name| parse_workload(name)).unwrap_or(WorkloadId::Oracle);
    let full = args.get(2).map(|s| s == "full").unwrap_or(false);
    let params = workload.params();

    let configs = [
        PrefetcherKind::None,
        PrefetcherKind::sms_infinite(),
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_16_11a(),
        PrefetcherKind::sms_8_11a(),
        PrefetcherKind::sms_pv8(),
    ];

    println!("Workload: {} — {}", params.name, params.description);
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>10} {:>10} {:>12}",
        "config", "coverage", "overpred", "PHT-hit", "IPC", "speedup", "L2 req +%"
    );

    let mut baseline = None;
    for prefetcher in configs {
        let sim = if full {
            SimConfig::paper(prefetcher.clone())
        } else {
            SimConfig::quick(prefetcher.clone())
        };
        let metrics = run_workload(&sim, &params);
        let (speedup, l2_increase) = match &baseline {
            Some(base) => (
                metrics.speedup_over(base) * 100.0,
                metrics.l2_request_increase_over(base) * 100.0,
            ),
            None => (0.0, 0.0),
        };
        println!(
            "{:<14} {:>8.1}% {:>8.1}% {:>8.1}% {:>10.3} {:>9.1}% {:>11.1}%",
            metrics.configuration,
            metrics.coverage.coverage() * 100.0,
            metrics.coverage.overprediction_ratio() * 100.0,
            metrics.sms.map_or(0.0, |s| s.pht_hit_ratio()) * 100.0,
            metrics.aggregate_ipc(),
            speedup,
            l2_increase,
        );
        if prefetcher == PrefetcherKind::None {
            baseline = Some(metrics);
        }
    }
}
