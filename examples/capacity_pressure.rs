//! Capacity pressure: the experiment that motivates Predictor Virtualization
//! (paper Sections 1 and 4.2) — large predictor tables are far more
//! effective, but dedicating tens of kilobytes per core is expensive, and a
//! virtualized table delivers the large-table behaviour with under a
//! kilobyte of dedicated storage.
//!
//! For a chosen workload this example sweeps the dedicated PHT from 8 sets
//! to 1K sets, prints the coverage and on-chip cost of each point, and then
//! shows where the virtualized PV-8 design lands.
//!
//! ```text
//! cargo run --release -p pv-examples --bin capacity_pressure [workload]
//! ```

use pv_core::PvConfig;
use pv_sim::{run_workload, PrefetcherKind, SimConfig};
use pv_sms::{PhtGeometry, SmsConfig, VirtualizedPht};
use pv_workloads::WorkloadId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args
        .get(1)
        .and_then(|name| {
            WorkloadId::all().into_iter().find(|w| w.name().eq_ignore_ascii_case(name))
        })
        .unwrap_or(WorkloadId::Apache);
    let params = workload.params();
    println!(
        "Capacity pressure on {}: {}\n",
        params.name, params.description
    );
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>14}",
        "PHT", "on-chip bytes", "coverage", "PHT hits", "cores x 4 cost"
    );

    let baseline = run_workload(&SimConfig::quick(PrefetcherKind::None), &params);
    let mut sets = 8usize;
    while sets <= 1024 {
        let geometry = PhtGeometry::finite(sets, 11);
        let config = SmsConfig::with_pht(geometry);
        let metrics = run_workload(&SimConfig::quick(PrefetcherKind::Sms(config)), &params);
        let bytes = geometry.total_bytes().unwrap();
        println!(
            "{:<12} {:>14} {:>11.1}% {:>11.1}% {:>13.1}K",
            geometry.label(),
            bytes,
            metrics.coverage.coverage() * 100.0,
            metrics.sms.map_or(0.0, |s| s.pht_hit_ratio()) * 100.0,
            bytes as f64 * 4.0 / 1024.0
        );
        let _ = metrics.speedup_over(&baseline);
        sets *= 4;
    }

    let pv = run_workload(&SimConfig::quick(PrefetcherKind::sms_pv8()), &params);
    let pv_bytes = VirtualizedPht::storage_budget(&PvConfig::pv8()).total_bytes();
    println!(
        "{:<12} {:>14} {:>11.1}% {:>11.1}% {:>13.1}K   <- virtualized (PV-8)",
        "PV-8",
        pv_bytes,
        pv.coverage.coverage() * 100.0,
        pv.sms.map_or(0.0, |s| s.pht_hit_ratio()) * 100.0,
        pv_bytes as f64 * 4.0 / 1024.0
    );
    println!(
        "\nSpeedup over no prefetching: PV-8 {:+.1}% vs largest dedicated table {:+.1}%.",
        pv.speedup_over(&baseline) * 100.0,
        run_workload(&SimConfig::quick(PrefetcherKind::sms_1k_11a()), &params)
            .speedup_over(&baseline)
            * 100.0
    );
    println!("Naively shrinking the dedicated table loses the coverage; virtualizing it does not.");
}
