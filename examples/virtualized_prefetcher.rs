//! Virtualized-prefetcher anatomy: drives the generic PVProxy directly,
//! showing the mechanics the paper describes in Sections 2 and 3.2 — the
//! PVStart-based address computation, PVCache hits and misses, predictor
//! data migrating into the L2, dirty write-backs, and the Section 4.6
//! storage budget. The proxy is instantiated at the SMS entry type
//! (`PvProxy<SmsEntry>`), the same instantiation `pv_sms::VirtualizedPht`
//! wraps for the engine.
//!
//! ```text
//! cargo run --release -p pv-examples --bin virtualized_prefetcher
//! ```

use pv_core::{PvConfig, PvProxy, VirtualizedBackend};
use pv_mem::{HierarchyConfig, MemoryHierarchy};
use pv_sms::{SmsEntry, SpatialPattern, TriggerKey};

fn main() {
    let hierarchy_config = HierarchyConfig::paper_baseline(4);
    let mut memory = MemoryHierarchy::new(hierarchy_config);
    let pv_start = hierarchy_config.pv_regions.core_base(0);
    let mut proxy: PvProxy<SmsEntry> = PvProxy::new(0, PvConfig::pv8(), pv_start);

    println!(
        "PVTable for core 0 reserved at {pv_start} ({} KB of physical memory)",
        proxy.table().footprint_bytes() / 1024
    );
    let layout = *proxy.layout();
    println!(
        "Packed layout derived from SmsEntry: {} entries x {} bits per 64B block, {} trailer bits",
        layout.entries_per_block(),
        layout.entry_bits(),
        layout.unused_trailing_bits()
    );
    println!("PVProxy on-chip budget:");
    for (component, bytes) in proxy.storage_budget().rows() {
        println!("  {component:<15} {bytes:>4} B");
    }
    println!(
        "  {:<15} {:>4} B\n",
        "total",
        proxy.storage_budget().total_bytes()
    );

    // A trigger the SMS engine would produce: PC 0x4a10, block offset 3.
    let trigger = TriggerKey::new(0x4a10, 3);
    let index = u64::from(trigger.index().raw());
    let (set, tag) = proxy.split_index(index);
    println!(
        "Trigger PC {:#x}, offset {} -> PHT index {:#07x}, PVTable set {}, memory address {}",
        trigger.pc,
        trigger.offset,
        index,
        set,
        proxy.table().set_address(set)
    );

    // 1. Cold lookup: the set has never been touched; it is fetched from DRAM.
    let lookup = proxy.lookup(index, &mut memory, 0);
    println!(
        "\n[cycle 0]      cold lookup  -> entry {:?}, ready at cycle {}",
        lookup.entry, lookup.ready_at
    );

    // 2. The prefetcher learns a pattern and stores it; the PVCache copy
    //    becomes dirty.
    let pattern = SpatialPattern::from_offsets([3, 4, 7, 12]);
    proxy.store(
        index,
        SmsEntry::new(tag as u16, pattern),
        &mut memory,
        1_000,
    );
    println!(
        "[cycle 1000]   store        -> pattern {pattern} cached, dirty entries: {}",
        proxy.pvcache().dirty_count()
    );

    // 3. A later lookup for the same trigger hits in the PVCache.
    let lookup = proxy.lookup(index, &mut memory, 2_000);
    println!(
        "[cycle 2000]   warm lookup  -> pattern {:?}, ready at cycle {} (PVCache hit)",
        lookup.entry.map(|e| e.pattern.to_string()),
        lookup.ready_at
    );

    // 4. Touch more PVTable sets than the PVCache holds: the dirty set is
    //    written back towards the L2 and naturally stays cached there.
    for i in 1..=8u64 {
        let other = u64::from(TriggerKey::new(0x4a10 + i * 4, 3).index().raw());
        proxy.lookup(other, &mut memory, 2_000 + i * 100);
    }
    println!(
        "[cycle ~3000]  capacity     -> dirty write-backs so far: {}",
        proxy.stats().dirty_writebacks
    );

    // 5. Re-fetch the original set: it now comes from the L2, not DRAM.
    let before = memory.stats().dram_reads;
    let lookup = proxy.lookup(index, &mut memory, 10_000);
    let after = memory.stats().dram_reads;
    println!(
        "[cycle 10000]  refetch      -> pattern {:?}, latency {} cycles, extra DRAM reads {}",
        lookup.entry.map(|e| e.pattern.to_string()),
        lookup.ready_at - 10_000,
        after - before
    );

    let stats = proxy.stats();
    println!(
        "\nPVProxy statistics: {} lookups, {} PVCache hits, {} memory requests, {} dirty write-backs",
        stats.lookups, stats.pvcache_hits, stats.memory_requests, stats.dirty_writebacks
    );
    let mem_stats = memory.stats();
    println!(
        "Memory-system view: {} L2 requests for predictor data, {} of them missed to DRAM",
        mem_stats.l2_requests.predictor, mem_stats.l2_misses.predictor
    );
}
