//! Second backend: the substrate is predictor-agnostic.
//!
//! Runs the paper's SMS prefetcher and a PC-indexed next-address (Markov)
//! prefetcher — two predictors with *different table geometries* — through
//! the same generic PVProxy, and prints the derived packed layouts, on-chip
//! budgets, and the simulated coverage/traffic of both.
//!
//! ```text
//! cargo run --release -p pv-examples --bin second_backend [workload]
//! ```

use pv_core::{PvConfig, PvLayout};
use pv_markov::{MarkovEntry, VirtualizedMarkov};
use pv_sim::{run_workload, PrefetcherKind, SimConfig};
use pv_sms::{SmsEntry, VirtualizedPht};
use pv_workloads::WorkloadId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = args
        .get(1)
        .and_then(|name| {
            WorkloadId::all().into_iter().find(|w| w.name().eq_ignore_ascii_case(name))
        })
        .unwrap_or(WorkloadId::Qry1);
    let params = workload.params();
    let pv = PvConfig::pv8();

    println!(
        "Two predictors, one substrate — workload {}: {}\n",
        params.name, params.description
    );

    let sms_layout = PvLayout::of::<SmsEntry>(pv.block_bytes);
    let markov_layout = PvLayout::of::<MarkovEntry>(pv.block_bytes);
    println!(
        "{:<12} {:>10} {:>14} {:>13} {:>16}",
        "backend", "entry bits", "entries/block", "trailer bits", "on-chip budget"
    );
    println!(
        "{:<12} {:>10} {:>14} {:>13} {:>15}B",
        "SMS",
        sms_layout.entry_bits(),
        sms_layout.entries_per_block(),
        sms_layout.unused_trailing_bits(),
        VirtualizedPht::storage_budget(&pv).total_bytes()
    );
    println!(
        "{:<12} {:>10} {:>14} {:>13} {:>15}B",
        "Markov",
        markov_layout.entry_bits(),
        markov_layout.entries_per_block(),
        markov_layout.unused_trailing_bits(),
        VirtualizedMarkov::storage_budget(&pv).total_bytes()
    );
    println!("\nEverything above is derived from each backend's PvEntry widths — nothing is hard-coded.\n");

    let baseline = run_workload(&SimConfig::quick(PrefetcherKind::None), &params);
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>14} {:>12}",
        "config", "coverage", "IPC", "speedup", "PV mem reqs", "L2 pred reqs"
    );
    for prefetcher in [
        PrefetcherKind::sms_pv8(),
        PrefetcherKind::markov_pv8(),
        PrefetcherKind::markov_1k(),
    ] {
        let metrics = run_workload(&SimConfig::quick(prefetcher), &params);
        println!(
            "{:<14} {:>8.1}% {:>10.3} {:>9.1}% {:>14} {:>12}",
            metrics.configuration,
            metrics.coverage.coverage() * 100.0,
            metrics.aggregate_ipc(),
            metrics.speedup_over(&baseline) * 100.0,
            metrics.pv.map(|pv| pv.memory_requests).unwrap_or(0),
            metrics.hierarchy.l2_requests.predictor,
        );
    }
    println!("\nBoth virtualized runs inject predictor-classified requests at the L2 through the same proxy.");
}
