//! Quickstart: the smallest end-to-end use of the library.
//!
//! Builds the paper's four-core system, runs one workload with (a) no
//! prefetching, (b) SMS with its original dedicated 59 KB pattern history
//! table, and (c) SMS with the virtualized PHT (under 1 KB on chip), and
//! prints the headline comparison the paper makes: the virtualized
//! prefetcher keeps the dedicated prefetcher's performance at a fraction of
//! the on-chip cost.
//!
//! ```text
//! cargo run --release -p pv-examples --bin quickstart
//! ```

use pv_core::PvConfig;
use pv_sim::{run_workload, PrefetcherKind, SimConfig};
use pv_sms::{PhtGeometry, VirtualizedPht};
use pv_workloads::WorkloadId;

fn main() {
    let workload = WorkloadId::Qry2.params();
    println!("Workload: {} — {}\n", workload.name, workload.description);

    // 1. Baseline: no data prefetching.
    let baseline = run_workload(&SimConfig::quick(PrefetcherKind::None), &workload);
    println!(
        "baseline (no prefetch):      IPC {:.3}",
        baseline.aggregate_ipc()
    );

    // 2. SMS with the dedicated 1K-set, 11-way PHT (~59 KB of on-chip SRAM).
    let dedicated = run_workload(&SimConfig::quick(PrefetcherKind::sms_1k_11a()), &workload);
    let dedicated_bytes = PhtGeometry::paper_1k_11a().total_bytes().unwrap();
    println!(
        "SMS, dedicated PHT:          IPC {:.3}  (+{:.1}%)  coverage {:.1}%  on-chip {:.1} KB",
        dedicated.aggregate_ipc(),
        dedicated.speedup_over(&baseline) * 100.0,
        dedicated.coverage.coverage() * 100.0,
        dedicated_bytes as f64 / 1024.0
    );

    // 3. SMS with the virtualized PHT: same engine, PHT stored in the memory
    //    hierarchy behind an 8-set PVCache.
    let virtualized = run_workload(&SimConfig::quick(PrefetcherKind::sms_pv8()), &workload);
    let pv_bytes = VirtualizedPht::storage_budget(&PvConfig::pv8()).total_bytes();
    println!(
        "SMS, virtualized PHT (PV-8): IPC {:.3}  (+{:.1}%)  coverage {:.1}%  on-chip {} B",
        virtualized.aggregate_ipc(),
        virtualized.speedup_over(&baseline) * 100.0,
        virtualized.coverage.coverage() * 100.0,
        pv_bytes
    );

    println!(
        "\nOn-chip predictor storage reduced {:.0}x ({:.1} KB -> {} B) at a {:.1}% performance difference.",
        dedicated_bytes as f64 / pv_bytes as f64,
        dedicated_bytes as f64 / 1024.0,
        pv_bytes,
        (dedicated.speedup_over(&baseline) - virtualized.speedup_over(&baseline)).abs() * 100.0
    );
    println!(
        "Extra L2 requests from virtualization: {:.1}% (predictor data is fetched through the L2).",
        virtualized.l2_request_increase_over(&dedicated) * 100.0
    );
}
