//! Guards for the PR-5 `PrefetchEngine` trait refactor.
//!
//! The per-core engine integration used to be an open-coded `Engine` enum
//! matched in five-plus places in `pv-sim`; it is now a trait with a single
//! feed/issue path. The refactor must be *observationally invisible*: every
//! pre-existing `PrefetcherKind` (all 12) must produce bit-identical
//! `RunMetrics::digest()` output in both `Ideal` and `Queued` contention
//! modes. The digests pinned here were recorded at the pre-refactor HEAD
//! (commit 1559948) with the exact same smoke-scale configuration.

use pv_mem::ContentionModel;
use pv_sim::{run_workload, PrefetcherKind, SimConfig};
use pv_workloads::workloads;

/// Smoke-scale windows (the perfbench configuration), with the PV region
/// grown when a cohabiting kind needs room for two tables per core.
fn smoke_config(kind: PrefetcherKind, contention: ContentionModel) -> SimConfig {
    let mut config = SimConfig::quick(kind);
    config.warmup_records = 20_000;
    config.measure_records = 30_000;
    let needed = config.prefetcher.pv_bytes_per_core();
    if needed > config.hierarchy.pv_regions.bytes_per_core {
        config.hierarchy = config.hierarchy.with_pv_bytes_per_core(needed);
    }
    config.hierarchy = config.hierarchy.with_contention(contention);
    config
}

/// Every `PrefetcherKind` that existed before the trait refactor.
fn pre_existing_kinds() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::None,
        PrefetcherKind::sms_1k_16a(),
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_16_11a(),
        PrefetcherKind::sms_8_11a(),
        PrefetcherKind::sms_infinite(),
        PrefetcherKind::sms_pv8(),
        PrefetcherKind::sms_pv16(),
        PrefetcherKind::markov_1k(),
        PrefetcherKind::markov_pv8(),
        PrefetcherKind::composite_dedicated(4),
        PrefetcherKind::composite_shared(8),
    ]
}

/// `(contention, kind label, digest)` recorded at commit 1559948, Qry1,
/// smoke scale, for all 12 pre-existing kinds under both contention models.
const PRE_REFACTOR_DIGESTS: &[(&str, &str, &str)] = &[
    ("Ideal", "NoPrefetch", "cycles=1665667|instr=381112|l2req=48247+0|l2miss=34644+0|l2wb=18+0|dram=34644r18w|cov=0c37056u0o|pf=0"),
    ("Ideal", "SMS-1K-16a", "cycles=956462|instr=381112|l2req=52918+0|l2miss=38766+0|l2wb=32+0|dram=38766r32w|cov=21579c15712u4268o|pf=27087"),
    ("Ideal", "SMS-1K-11a", "cycles=956462|instr=381112|l2req=52918+0|l2miss=38766+0|l2wb=32+0|dram=38766r32w|cov=21579c15712u4268o|pf=27087"),
    ("Ideal", "SMS-16-11a", "cycles=1014948|instr=381112|l2req=52248+0|l2miss=38165+0|l2wb=29+0|dram=38165r29w|cov=19313c17955u3708o|pf=24065"),
    ("Ideal", "SMS-8-11a", "cycles=1149757|instr=381112|l2req=50818+0|l2miss=36868+0|l2wb=28+0|dram=36868r28w|cov=15158c22049u2415o|pf=18360"),
    ("Ideal", "SMS-Infinite", "cycles=956462|instr=381112|l2req=52918+0|l2miss=38766+0|l2wb=32+0|dram=38766r32w|cov=21579c15712u4268o|pf=27087"),
    ("Ideal", "SMS-PV8", "cycles=958661|instr=381112|l2req=52918+10981|l2miss=38766+1101|l2wb=35+0|dram=39867r35w|cov=21579c15712u4268o|pf=27087"),
    ("Ideal", "SMS-PV16", "cycles=958449|instr=381112|l2req=52918+10702|l2miss=38766+1101|l2wb=35+0|dram=39867r35w|cov=21579c15712u4268o|pf=27087"),
    ("Ideal", "Markov-1K", "cycles=1411302|instr=381112|l2req=100329+0|l2miss=77193+0|l2wb=736+0|dram=77193r736w|cov=6510c31902u50778o|pf=57477"),
    ("Ideal", "Markov-PV8", "cycles=1411438|instr=381112|l2req=100329+31067|l2miss=77195+324|l2wb=757+32|dram=77519r789w|cov=6510c31902u50778o|pf=57477"),
    ("Ideal", "SMS+Markov-2xPV4", "cycles=873511|instr=381112|l2req=106059+111258|l2miss=82396+1507|l2wb=1021+129|dram=83903r1150w|cov=23587c15077u56111o|pf=80872"),
    ("Ideal", "SMS+Markov-shPV8", "cycles=873355|instr=381112|l2req=106059+60416|l2miss=82394+1508|l2wb=1021+130|dram=83902r1151w|cov=23587c15077u56111o|pf=80872"),
    ("Queued", "NoPrefetch", "cycles=1715434|instr=381112|l2req=48247+0|l2miss=34644+0|l2wb=18+0|dram=34644r18w|cov=0c37056u0o|pf=0"),
    ("Queued", "SMS-1K-16a", "cycles=1255825|instr=381112|l2req=52918+0|l2miss=38767+0|l2wb=32+0|dram=38767r32w|cov=21579c15712u4268o|pf=27087"),
    ("Queued", "SMS-1K-11a", "cycles=1255825|instr=381112|l2req=52918+0|l2miss=38767+0|l2wb=32+0|dram=38767r32w|cov=21579c15712u4268o|pf=27087"),
    ("Queued", "SMS-16-11a", "cycles=1294003|instr=381112|l2req=52248+0|l2miss=38163+0|l2wb=29+0|dram=38163r29w|cov=19313c17955u3708o|pf=24065"),
    ("Queued", "SMS-8-11a", "cycles=1375648|instr=381112|l2req=50818+0|l2miss=36868+0|l2wb=28+0|dram=36868r28w|cov=15158c22049u2415o|pf=18360"),
    ("Queued", "SMS-Infinite", "cycles=1255825|instr=381112|l2req=52918+0|l2miss=38767+0|l2wb=32+0|dram=38767r32w|cov=21579c15712u4268o|pf=27087"),
    ("Queued", "SMS-PV8", "cycles=1294996|instr=381112|l2req=52918+10981|l2miss=38768+1101|l2wb=35+0|dram=39869r35w|cov=21579c15712u4268o|pf=27087"),
    ("Queued", "SMS-PV16", "cycles=1320173|instr=381112|l2req=52918+10702|l2miss=38767+1101|l2wb=35+0|dram=39868r35w|cov=21579c15712u4268o|pf=27087"),
    ("Queued", "Markov-1K", "cycles=2174455|instr=381112|l2req=100330+0|l2miss=77188+0|l2wb=733+0|dram=77188r733w|cov=6511c31901u50778o|pf=57478"),
    ("Queued", "Markov-PV8", "cycles=2252570|instr=381112|l2req=100330+31070|l2miss=77187+324|l2wb=753+32|dram=77511r785w|cov=6511c31901u50778o|pf=57478"),
    ("Queued", "SMS+Markov-2xPV4", "cycles=2325104|instr=381112|l2req=106059+110962|l2miss=82435+1495|l2wb=1020+122|dram=83930r1142w|cov=23587c15077u56111o|pf=80872"),
    ("Queued", "SMS+Markov-shPV8", "cycles=2314061|instr=381112|l2req=106059+60474|l2miss=82438+1498|l2wb=1018+125|dram=83936r1143w|cov=23587c15077u56111o|pf=80872"),
];

fn contention_by_name(name: &str) -> ContentionModel {
    match name {
        "Ideal" => ContentionModel::Ideal,
        "Queued" => ContentionModel::Queued,
        other => panic!("unknown contention model {other}"),
    }
}

/// The digest-stability satellite: the trait refactor (and the off-by-
/// default throttling subsystem) must leave every pre-existing kind
/// bit-identical in both contention modes.
#[test]
fn all_twelve_pre_existing_kinds_are_digest_identical_in_both_modes() {
    assert_eq!(
        PRE_REFACTOR_DIGESTS.len(),
        2 * pre_existing_kinds().len(),
        "one pin per (contention, kind)"
    );
    let workload = workloads::qry1();
    for (contention, label, expected) in PRE_REFACTOR_DIGESTS {
        let kind = pre_existing_kinds()
            .into_iter()
            .find(|k| k.label() == *label)
            .unwrap_or_else(|| panic!("unknown kind label {label}"));
        let config = smoke_config(kind, contention_by_name(contention));
        let metrics = run_workload(&config, &workload);
        assert_eq!(
            metrics.digest(),
            *expected,
            "{label} under {contention}: digest moved across the PrefetchEngine refactor"
        );
    }
}

/// Pre-existing kinds must not suddenly report throttle metrics — the
/// subsystem is opt-in.
#[test]
fn unthrottled_kinds_report_no_throttle_metrics() {
    let metrics = run_workload(
        &smoke_config(PrefetcherKind::sms_pv8(), ContentionModel::Ideal),
        &workloads::qry1(),
    );
    assert!(metrics.throttle.is_none());
    assert_eq!(metrics.dropped_prefetches(), 0);
}

/// The next-line satellite: the counters that used to be visible only in a
/// `pv-mem` unit test now flow through `HierarchyStats` into `RunMetrics`.
#[test]
fn next_line_counters_flow_into_run_metrics() {
    let metrics = run_workload(
        &smoke_config(PrefetcherKind::None, ContentionModel::Ideal),
        &workloads::qry1(),
    );
    assert_eq!(metrics.hierarchy.next_line.len(), 4, "one entry per core");
    assert!(
        metrics.next_line_issued() > 0,
        "instruction streams must trigger next-line prefetches"
    );
    assert_eq!(
        metrics.next_line_issued(),
        metrics.hierarchy.next_line_total().issued
    );
    // The predictor view counts every request it makes; the hierarchy
    // counter only those that installed a line — the predictor can never
    // report fewer.
    assert!(
        metrics.next_line_issued() >= metrics.hierarchy.l1i_prefetches.iter().sum::<u64>(),
        "issued requests must dominate actual installs"
    );
}

/// The throttle must bite on a degree-1 engine too: positive caps can
/// never truncate Markov's single prediction per access, so only the drop
/// level (cap 0 with the probe trickle) suppresses it — and Markov's
/// dismal accuracy must reach it.
#[test]
fn degree_one_engines_are_throttled_through_the_drop_level() {
    let workload = workloads::qry1();
    let fixed = run_workload(
        &smoke_config(PrefetcherKind::markov_pv8(), ContentionModel::Ideal),
        &workload,
    );
    let throttled = run_workload(
        &smoke_config(
            PrefetcherKind::markov_pv8_throttled(),
            ContentionModel::Ideal,
        ),
        &workload,
    );
    let feedback = throttled.throttle.as_ref().expect("throttle metrics present");
    assert!(
        feedback.accuracy() < 0.30,
        "the premise: Markov mispredicts most of the time (measured {:.2})",
        feedback.accuracy()
    );
    assert_eq!(
        feedback.max_level_reached(),
        4,
        "only the drop level can suppress a degree-1 engine"
    );
    assert!(
        throttled.prefetches_issued * 2 < fixed.prefetches_issued,
        "the drop level must suppress most of the stream ({} vs {})",
        throttled.prefetches_issued,
        fixed.prefetches_issued
    );
    assert!(
        throttled.prefetches_issued > 0,
        "the probe trickle keeps the feedback signal alive"
    );
}

/// A throttled kind is a real engine end-to-end: it runs, reports
/// throttle metrics, and its digest differs from the fixed-degree parent
/// exactly when the controller engages.
#[test]
fn throttled_kind_runs_and_reports_feedback_metrics() {
    let workload = workloads::apache();
    let fixed = run_workload(
        &smoke_config(PrefetcherKind::sms_pv8(), ContentionModel::Ideal),
        &workload,
    );
    let throttled = run_workload(
        &smoke_config(PrefetcherKind::sms_pv8_throttled(), ContentionModel::Ideal),
        &workload,
    );
    assert_eq!(throttled.configuration, "SMS-PV8-throttled");
    let feedback = throttled.throttle.as_ref().expect("throttled runs report metrics");
    assert!(feedback.samples > 0, "epochs must complete");
    assert!(feedback.accuracy() > 0.0);
    assert!(
        feedback.max_level_reached() > 0,
        "Apache's accuracy must engage the throttle"
    );
    assert!(throttled.dropped_prefetches() > 0);
    assert!(throttled.prefetches_issued < fixed.prefetches_issued);
    assert_ne!(
        throttled.digest(),
        fixed.digest(),
        "an engaged throttle is a behaviour change"
    );
}
