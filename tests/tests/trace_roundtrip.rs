//! Trace format guards: random-layout round trips, the pinned on-disk
//! golden trace, version gating, and record→replay digest fidelity.
//!
//! The binary trace format (pv-trace) is a persistence format: bytes
//! written by one build must decode identically in every later build, or
//! every recorded artifact silently rots. Three layers of defence:
//!
//! 1. property round trips — seeded random records encode→decode
//!    identically across randomly drawn codec layouts;
//! 2. a golden trace committed at `tests/data/golden_qry1.pvtrace` — both
//!    directions are pinned (current encoder reproduces the bytes, current
//!    decoder reproduces the records), so neither side can drift;
//! 3. replaying a recorded run must reproduce the live run's
//!    `RunMetrics::digest()` bit-for-bit in both contention modes — the
//!    pinned digests below were recorded when the format was introduced.

use pv_mem::ContentionModel;
use pv_sim::{run_streams, run_workload, PrefetcherKind, SimConfig};
use pv_trace::{
    encode_records, encode_records_with_layout, record_generator, Provenance, ReplayStream,
    TraceError, TraceHeader, TraceLayout, VERSION,
};
use pv_workloads::{workloads, AccessStream, MemOp, TraceGenerator, TraceRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where the golden trace lives (committed binary artifact).
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/data/golden_qry1.pvtrace");
/// What the golden trace contains: the first `GOLDEN_RECORDS` records of
/// Qry1 at the default simulator seed, core 0.
const GOLDEN_SEED: u64 = 0x5EED_0001;
const GOLDEN_RECORDS: usize = 1_000;

fn golden_records() -> Vec<TraceRecord> {
    TraceGenerator::new(&workloads::qry1(), GOLDEN_SEED, 0)
        .take(GOLDEN_RECORDS)
        .collect()
}

fn golden_bytes() -> Vec<u8> {
    encode_records(
        &golden_records(),
        Provenance {
            core: 0,
            seed: GOLDEN_SEED,
        },
    )
}

/// Regenerates the golden trace. Run explicitly after an *intentional*
/// format change (which must also bump `VERSION`):
/// `cargo test -p pv-tests --test trace_roundtrip regenerate -- --ignored`
#[test]
#[ignore = "writes the golden artifact; run only on intentional format changes"]
fn regenerate_golden_trace() {
    std::fs::write(GOLDEN_PATH, golden_bytes()).expect("write golden trace");
}

#[test]
fn random_records_round_trip_across_random_layouts() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for trial in 0..40 {
        let layout = TraceLayout {
            pc_bits: rng.gen_range(1..=64),
            addr_bits: rng.gen_range(1..=64),
            imm_bits: rng.gen_range(1..=32),
        };
        layout.validate().expect("drawn layouts are in range");
        let mask = |bits: u32| {
            if bits >= 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            }
        };
        let records: Vec<TraceRecord> = (0..rng.gen_range(1..200usize))
            .map(|_| TraceRecord {
                pc: rng.gen::<u64>() & mask(layout.pc_bits),
                address: rng.gen::<u64>() & mask(layout.addr_bits),
                op: match rng.gen_range(0..3u32) {
                    0 => MemOp::Load,
                    1 => MemOp::Store,
                    _ => MemOp::InstructionFetch,
                },
                non_mem_instructions: (rng.gen::<u64>() & mask(layout.imm_bits)) as u32,
            })
            .collect();
        let bytes = encode_records_with_layout(&records, layout, Provenance::default());
        let replay = ReplayStream::new(bytes).expect("encoded trace must parse");
        assert_eq!(replay.header().layout, layout);
        let decoded: Vec<TraceRecord> = replay.collect();
        assert_eq!(
            decoded, records,
            "trial {trial}: layout {layout:?} must round-trip"
        );
    }
}

#[test]
fn golden_trace_bytes_are_pinned() {
    let on_disk = std::fs::read(GOLDEN_PATH).expect(
        "golden trace missing; run `cargo test -p pv-tests --test trace_roundtrip \
         regenerate -- --ignored` once and commit the artifact",
    );
    assert_eq!(
        on_disk,
        golden_bytes(),
        "the encoder no longer reproduces the committed golden trace — the on-disk format \
         drifted (an intentional change must bump VERSION and regenerate the artifact)"
    );
}

#[test]
fn golden_trace_decodes_to_the_generator_stream() {
    let on_disk = std::fs::read(GOLDEN_PATH).expect("golden trace present");
    let replay = ReplayStream::new(on_disk).expect("golden trace parses");
    let header = *replay.header();
    assert_eq!(header.version, VERSION);
    assert_eq!(header.layout, TraceLayout::DEFAULT);
    assert_eq!(header.records, GOLDEN_RECORDS as u64);
    assert_eq!(header.provenance.seed, GOLDEN_SEED);
    let decoded: Vec<TraceRecord> = replay.collect();
    assert_eq!(
        decoded,
        golden_records(),
        "the decoder no longer reproduces the golden records"
    );
}

#[test]
fn unknown_versions_and_corruption_are_rejected() {
    let bytes = std::fs::read(GOLDEN_PATH).expect("golden trace present");
    // A future version must be rejected, not half-decoded.
    let mut future = bytes.clone();
    future[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert_eq!(
        ReplayStream::new(future).unwrap_err(),
        TraceError::UnsupportedVersion(VERSION + 1)
    );
    // Bad magic.
    let mut magic = bytes.clone();
    magic[0..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        TraceHeader::parse(&magic),
        Err(TraceError::BadMagic(_))
    ));
    // A truncated body must be caught by the header's record count.
    assert!(matches!(
        ReplayStream::new(bytes[..bytes.len() - 1].to_vec()),
        Err(TraceError::Truncated { .. })
    ));
}

/// Smoke-scale windows (the perfbench/engine-refactor configuration).
fn smoke_config(kind: PrefetcherKind, contention: ContentionModel) -> SimConfig {
    let mut config = SimConfig::quick(kind);
    config.warmup_records = 20_000;
    config.measure_records = 30_000;
    config.hierarchy = config.hierarchy.with_contention(contention);
    config
}

/// Records the per-core streams a live run would consume and replays them
/// through the simulator, returning (live digest, replay digest).
fn record_then_replay(contention: ContentionModel) -> (String, String) {
    let config = smoke_config(PrefetcherKind::sms_pv8(), contention);
    let workload = workloads::qry1();
    let live = run_workload(&config, &workload);

    // The simulator consumes exactly warmup + measure records per core, and
    // per-core streams are interleaving-independent, so recording that many
    // records per core captures the run in full.
    let per_core = config.warmup_records + config.measure_records;
    let streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
        .map(|core| {
            let bytes = record_generator(&workload, config.seed, core as u32, per_core)
                .expect("generated records fit the default layout");
            Box::new(ReplayStream::new(bytes).expect("recorded trace parses"))
                as Box<dyn AccessStream>
        })
        .collect();
    let replayed = run_streams(&config, streams);
    (live.digest(), replayed.digest())
}

/// Digest pins for the record→replay round trip (smoke scale, SMS-PV8,
/// Qry1). Recorded when the trace format was introduced; a change here
/// means the simulated outcome moved, which a record/replay PR must not do.
const PINNED_DIGEST_IDEAL: &str =
    "cycles=958661|instr=381112|l2req=52918+10981|l2miss=38766+1101|l2wb=35+0|dram=39867r35w|cov=21579c15712u4268o|pf=27087";
const PINNED_DIGEST_QUEUED: &str =
    "cycles=1294996|instr=381112|l2req=52918+10981|l2miss=38768+1101|l2wb=35+0|dram=39869r35w|cov=21579c15712u4268o|pf=27087";

#[test]
fn replay_reproduces_live_digest_ideal() {
    let (live, replayed) = record_then_replay(ContentionModel::Ideal);
    assert_eq!(
        live, replayed,
        "replay must be bit-identical to the live run"
    );
    assert_eq!(live, PINNED_DIGEST_IDEAL, "pinned Ideal digest moved");
}

#[test]
fn replay_reproduces_live_digest_queued() {
    let (live, replayed) = record_then_replay(ContentionModel::Queued);
    assert_eq!(
        live, replayed,
        "replay must be bit-identical to the live run"
    );
    assert_eq!(live, PINNED_DIGEST_QUEUED, "pinned Queued digest moved");
}

#[test]
fn partial_replay_covers_a_prefix_of_the_live_run() {
    // A trace shorter than the run's demand ends the core's stream early —
    // here all four cores run out mid-measurement and the run still
    // produces coherent (smaller) totals.
    let config = smoke_config(PrefetcherKind::None, ContentionModel::Ideal);
    let workload = workloads::qry17();
    let per_core = config.warmup_records + config.measure_records / 2;
    let streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
        .map(|core| {
            let bytes = record_generator(&workload, config.seed, core as u32, per_core)
                .expect("records fit");
            Box::new(ReplayStream::new(bytes).expect("valid trace")) as Box<dyn AccessStream>
        })
        .collect();
    let full = run_workload(&config, &workload);
    let partial = run_streams(&config, streams);
    assert!(partial.total_instructions > 0);
    assert!(
        partial.total_instructions < full.total_instructions,
        "a truncated trace must simulate fewer instructions ({} vs {})",
        partial.total_instructions,
        full.total_instructions
    );
}
