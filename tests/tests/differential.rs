//! Differential tests: the allocation-free hot-path structures against the
//! retained reference implementations.
//!
//! The flat [`SetAssociative`] (packed replacement state, no boxed policies,
//! no per-insert valid-mask) and the word-level packing codec replaced
//! allocation-heavy originals in the per-access simulation path. Those
//! originals are kept as [`ReferenceSetAssociative`] and
//! [`packing::reference`]; here both generations are driven with identical
//! seeded random op streams and must agree on every observable: hits,
//! misses, evicted victims, occupancy, and bit-exact packed block layouts.

use pv_core::{decode_set, encode_set, packing, PvLayout, PvSet, RawEntry};
use pv_mem::{ReferenceSetAssociative, ReplacementKind, SetAssociative};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One random geometry per policy constraint: PLRU needs power-of-two ways.
fn random_geometry(rng: &mut StdRng, kind: ReplacementKind) -> (usize, usize) {
    let sets = 1usize << rng.gen_range(0u32..=5);
    let ways = match kind {
        ReplacementKind::TreePlru => 1usize << rng.gen_range(0u32..=4),
        _ => rng.gen_range(1usize..=20),
    };
    (sets, ways)
}

/// Drives both arrays with the same op stream (get / insert / invalidate
/// over a small tag universe so hits, conflicts and invalidations all
/// occur), asserting identical results after every op.
fn drive_differential(kind: ReplacementKind, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (sets, ways) = random_geometry(&mut rng, kind);
    let mut flat: SetAssociative<u64> = SetAssociative::new(sets, ways, kind);
    let mut reference: ReferenceSetAssociative<u64> =
        ReferenceSetAssociative::new(sets, ways, kind);
    for op in 0..4_000u64 {
        let set = rng.gen_range(0usize..sets);
        // ~2x capacity worth of tags: plenty of hits and plenty of misses.
        let tag = rng.gen_range(0u64..(2 * ways as u64).max(2));
        match rng.gen_range(0u32..10) {
            0..=3 => {
                assert_eq!(
                    flat.get(set, tag),
                    reference.get(set, tag),
                    "get mismatch at op {op} (kind {kind:?}, {sets}x{ways})"
                );
            }
            4..=7 => {
                let value = op;
                let a = flat.insert(set, tag, value);
                let b = reference.insert(set, tag, value);
                assert_eq!(
                    a, b,
                    "insert eviction mismatch at op {op} (kind {kind:?}, {sets}x{ways})"
                );
            }
            _ => {
                assert_eq!(
                    flat.invalidate(set, tag),
                    reference.invalidate(set, tag),
                    "invalidate mismatch at op {op} (kind {kind:?}, {sets}x{ways})"
                );
            }
        }
        assert_eq!(flat.len(), reference.len(), "occupancy diverged at op {op}");
    }
    // Final contents must agree exactly, set by set.
    let mut flat_entries: Vec<(usize, u64, u64)> =
        flat.iter().map(|(s, occ)| (s, occ.tag, occ.value)).collect();
    let mut ref_entries: Vec<(usize, u64, u64)> =
        reference.iter().map(|(s, occ)| (s, occ.tag, occ.value)).collect();
    flat_entries.sort_unstable();
    ref_entries.sort_unstable();
    assert_eq!(flat_entries, ref_entries);
}

#[test]
fn flat_set_associative_matches_reference_lru() {
    for seed in 0..24 {
        drive_differential(ReplacementKind::Lru, 0xD1FF_0000 + seed);
    }
}

#[test]
fn flat_set_associative_matches_reference_tree_plru() {
    for seed in 0..24 {
        drive_differential(ReplacementKind::TreePlru, 0xD1FF_1000 + seed);
    }
}

#[test]
fn flat_set_associative_matches_reference_random() {
    for seed in 0..24 {
        drive_differential(ReplacementKind::Random, 0xD1FF_2000 + seed);
    }
}

/// A random layout that fits 64-byte blocks, same bounds as the invariants
/// suite.
fn random_layout(rng: &mut StdRng) -> PvLayout {
    let tag_bits = rng.gen_range(4u32..=20);
    let payload_bits = rng.gen_range(4u32..=44);
    PvLayout::new(tag_bits, payload_bits, 64)
}

fn random_set(rng: &mut StdRng, layout: &PvLayout, occupancy: usize) -> PvSet<RawEntry> {
    let mut set = PvSet::new(layout.entries_per_block());
    for _ in 0..occupancy {
        let tag = rng.gen_range(0u64..=layout.max_tag());
        let payload = rng.gen_range(1u64..=layout.max_payload());
        set.insert(RawEntry::new(tag, payload));
    }
    set
}

/// The word-level codec and the retained bit-at-a-time codec must produce
/// byte-identical blocks and identical decoded sets across random layouts
/// and occupancies.
#[test]
fn word_level_codec_matches_reference_bit_layout() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_3000);
    for _ in 0..200 {
        let layout = random_layout(&mut rng);
        let occupancy = rng.gen_range(0usize..=layout.entries_per_block());
        let set = random_set(&mut rng, &layout, occupancy);

        let word_block = encode_set(&set, &layout);
        let bit_block = packing::reference::encode_set(&set, &layout);
        assert_eq!(
            &word_block[..],
            &bit_block[..],
            "packed layout diverged for {layout:?}"
        );

        let word_decoded: PvSet<RawEntry> = decode_set(&word_block, &layout);
        let bit_decoded: PvSet<RawEntry> = packing::reference::decode_set(&word_block, &layout);
        let word_order: Vec<&RawEntry> = word_decoded.iter().collect();
        let bit_order: Vec<&RawEntry> = bit_decoded.iter().collect();
        assert_eq!(word_order, bit_order, "decode diverged for {layout:?}");
        assert_eq!(word_decoded.len(), set.len());
    }
}

/// Cross-decoding: blocks written by one codec generation decode identically
/// under the other, including blocks with adversarial duplicate tags.
#[test]
fn codec_generations_cross_decode() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_4000);
    for _ in 0..100 {
        let layout = random_layout(&mut rng);
        // Write raw fields directly (duplicates allowed) through each
        // generation's primitives; both must decode the block the same way.
        let mut word_buf = vec![0u8; 64];
        let mut bit_buf = vec![0u8; 64];
        for slot in 0..layout.entries_per_block() {
            let tag = rng.gen_range(0u64..=layout.max_tag().min(3));
            let payload = rng.gen_range(0u64..=layout.max_payload());
            let offset = slot * layout.entry_bits() as usize;
            packing::write_bits(&mut word_buf, offset, tag, layout.tag_bits);
            packing::reference::write_bits(&mut bit_buf, offset, tag, layout.tag_bits);
            let payload_offset = offset + layout.tag_bits as usize;
            packing::write_bits(&mut word_buf, payload_offset, payload, layout.payload_bits);
            packing::reference::write_bits(
                &mut bit_buf,
                payload_offset,
                payload,
                layout.payload_bits,
            );
        }
        assert_eq!(
            word_buf, bit_buf,
            "raw field writes diverged for {layout:?}"
        );
        let a: PvSet<RawEntry> = decode_set(&word_buf, &layout);
        let b: PvSet<RawEntry> = packing::reference::decode_set(&word_buf, &layout);
        let a_order: Vec<&RawEntry> = a.iter().collect();
        let b_order: Vec<&RawEntry> = b.iter().collect();
        assert_eq!(
            a_order, b_order,
            "duplicate-tag decode diverged for {layout:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// DRAM in-flight queue: the fixed-capacity ring against the retained
// reference deque, replicated over the full channel timing model.
// ---------------------------------------------------------------------------

use pv_mem::{
    Address, ContentionModel, DramConfig, MainMemory, PvRegionConfig, ReferenceInflightQueue,
    BLOCK_OFFSET_BITS,
};

/// The pre-ring Queued channel service, reimplemented verbatim around
/// [`ReferenceInflightQueue`]: growable deque, `len - depth` admission
/// indexing, drain-on-entry. Every timing decision the production
/// [`MainMemory`] makes through its [`pv_mem::InflightRing`] must match
/// this model request for request.
struct ReferenceDram {
    config: DramConfig,
    channels: Vec<(Vec<u64>, u64, ReferenceInflightQueue)>,
}

impl ReferenceDram {
    fn new(config: DramConfig) -> Self {
        let channels = (0..config.channels)
            .map(|_| {
                (
                    vec![0u64; config.banks_per_channel],
                    0u64,
                    ReferenceInflightQueue::new(),
                )
            })
            .collect();
        ReferenceDram { config, channels }
    }

    /// `(latency, queue_delay)` of one request, original semantics.
    fn service(&mut self, addr: Address, now: u64) -> (u64, u64) {
        let block = addr.raw() >> BLOCK_OFFSET_BITS;
        let channel_idx = (block % self.config.channels as u64) as usize;
        let bank_idx =
            ((block / self.config.channels as u64) % self.config.banks_per_channel as u64) as usize;
        let (banks, data_busy_until, inflight) = &mut self.channels[channel_idx];
        inflight.drain(now);
        let start = inflight.admit(now, self.config.queue_depth);
        let bank_start = start.max(banks[bank_idx]);
        banks[bank_idx] = bank_start + self.config.bank_occupancy;
        let unloaded_done = bank_start + self.config.latency;
        let done = unloaded_done.max(*data_busy_until + self.config.cycles_per_transfer);
        *data_busy_until = done;
        inflight.push(done);
        let latency = done - now;
        (latency, latency - self.config.latency)
    }

    fn reset_timing(&mut self) {
        for (banks, data_busy_until, inflight) in &mut self.channels {
            banks.iter_mut().for_each(|bank| *bank = 0);
            *data_busy_until = 0;
            inflight.clear();
        }
    }
}

/// Seeded request streams (mixed reads/writes, PV and application
/// addresses, non-monotone per-requester timestamps, a mid-stream timing
/// rebase) driven through the production Queued [`MainMemory`] and the
/// reference model: latency and queue delay must agree on every request,
/// across geometries that keep the queues empty, saturated, and
/// oscillating — including an ideal bus and a single one-deep queue.
#[test]
fn queued_dram_service_matches_the_reference_inflight_queue() {
    let geometries = [
        DramConfig::paper(),
        DramConfig::paper().with_cycles_per_transfer(0),
        DramConfig::paper().with_cycles_per_transfer(128),
        {
            let mut c = DramConfig::paper();
            c.channels = 1;
            c.banks_per_channel = 1;
            c.queue_depth = 1;
            c
        },
        {
            let mut c = DramConfig::paper();
            c.channels = 3;
            c.banks_per_channel = 2;
            c.queue_depth = 2;
            c.cycles_per_transfer = 64;
            c
        },
    ];
    for seed in 0..4u64 {
        for config in &geometries {
            let regions = PvRegionConfig::paper_default(4);
            let mut mem = MainMemory::new(*config, regions, ContentionModel::Queued);
            let mut reference = ReferenceDram::new(*config);
            let mut rng = StdRng::seed_from_u64(0xD3A1_0000 ^ (seed << 8));
            let mut now = 0u64;
            for op in 0..4_000u32 {
                // Timestamps advance unevenly and occasionally jump back
                // (independent requester clocks are not globally ordered).
                now = (now + rng.gen_range(0u64..48)).saturating_sub(rng.gen_range(0u64..16));
                let addr = if rng.gen_range(0u32..4) == 0 {
                    Address::new(regions.core_base(0).raw() + rng.gen_range(0u64..256 * 1024))
                } else {
                    Address::new(rng.gen_range(0u64..1 << 30))
                };
                let response = if rng.gen_bool(0.8) {
                    mem.read(addr, now)
                } else {
                    mem.write(addr, now)
                };
                let (latency, queue_delay) = reference.service(addr, now);
                assert_eq!(
                    (response.latency, response.queue_delay),
                    (latency, queue_delay),
                    "op {op} diverged (seed {seed}, config {config:?})"
                );
                // A measurement-window rebase mid-stream: both models must
                // clear their queues identically.
                if op == 2_500 {
                    mem.reset_timing();
                    reference.reset_timing();
                    now = 0;
                }
            }
        }
    }
}
