//! End-to-end reproduction of the paper's headline claim: the virtualized
//! prefetcher (SMS-PV8, under 1 KB of dedicated on-chip storage) matches the
//! performance of the dedicated 1K-set table (~59 KB), while naively
//! shrinking the dedicated table loses most of the benefit.

use pv_sim::{run_workload, PrefetcherKind, RunMetrics, SimConfig};
use pv_workloads::WorkloadId;

/// Short windows keep the suite fast in debug builds while still training
/// the predictor enough for the qualitative claims to hold.
fn config(prefetcher: PrefetcherKind) -> SimConfig {
    let mut config = SimConfig::quick(prefetcher);
    config.warmup_records = 40_000;
    config.measure_records = 50_000;
    config
}

fn run(workload: WorkloadId, prefetcher: PrefetcherKind) -> RunMetrics {
    run_workload(&config(prefetcher), &workload.params())
}

#[test]
fn virtualized_prefetcher_matches_dedicated_large_table() {
    let workload = WorkloadId::Qry1;
    let baseline = run(workload, PrefetcherKind::None);
    let dedicated = run(workload, PrefetcherKind::sms_1k_11a());
    let virtualized = run(workload, PrefetcherKind::sms_pv8());

    let dedicated_speedup = dedicated.speedup_over(&baseline);
    let virtualized_speedup = virtualized.speedup_over(&baseline);
    assert!(
        dedicated_speedup > 0.05,
        "the dedicated prefetcher must help the scan workload"
    );
    assert!(
        (dedicated_speedup - virtualized_speedup).abs() < 0.05,
        "virtualization must preserve the speedup (dedicated {:.3}, virtualized {:.3})",
        dedicated_speedup,
        virtualized_speedup
    );
    assert!(
        (dedicated.coverage.coverage() - virtualized.coverage.coverage()).abs() < 0.05,
        "virtualization must preserve coverage"
    );
}

#[test]
fn small_dedicated_tables_lose_most_of_the_benefit() {
    let workload = WorkloadId::Oracle;
    let large = run(workload, PrefetcherKind::sms_1k_11a());
    let small = run(workload, PrefetcherKind::sms_8_11a());
    assert!(
        small.coverage.coverage() < large.coverage.coverage() * 0.5,
        "an 8-set PHT must lose most of the coverage on the OLTP workload ({:.3} vs {:.3})",
        small.coverage.coverage(),
        large.coverage.coverage()
    );
}

#[test]
fn on_chip_storage_is_reduced_by_two_orders_of_magnitude() {
    use pv_core::PvConfig;
    use pv_sms::{PhtGeometry, VirtualizedPht};
    let dedicated = PhtGeometry::paper_1k_11a().total_bytes().unwrap();
    let virtualized = VirtualizedPht::storage_budget(&PvConfig::pv8()).total_bytes();
    assert!(
        virtualized < 1024,
        "the PVProxy must need less than one kilobyte"
    );
    assert!(
        dedicated / virtualized >= 60,
        "virtualization must reduce dedicated storage by roughly 68x (got {}x)",
        dedicated / virtualized
    );
}

#[test]
fn virtualized_runs_expose_predictor_statistics() {
    let metrics = run(WorkloadId::Qry17, PrefetcherKind::sms_pv8());
    let pv = metrics.pv.expect("PV stats must be reported");
    assert!(pv.lookups > 0);
    assert!(pv.memory_requests > 0);
    assert!(
        pv.memory_requests <= pv.lookups + pv.stores,
        "at most one fetch per operation"
    );
    assert!(metrics.hierarchy.l2_requests.predictor >= pv.memory_requests);
}
