//! Substrate generality: two distinct `PvEntry` implementations — SMS's
//! 43-bit spatial-pattern entries and the Markov prefetcher's 40-bit
//! next-address entries — run through the *same* generic `PvProxy`, and
//! their traffic accounting is directly comparable (the issue's acceptance
//! criterion for the dependency inversion).

use pv_core::{PvConfig, PvEntry, PvProxy, VirtualizedBackend};
use pv_markov::MarkovEntry;
use pv_mem::{HierarchyConfig, MemoryHierarchy};
use pv_sim::{run_workload, PrefetcherKind, SimConfig};
use pv_sms::{SmsEntry, SpatialPattern};
use pv_workloads::WorkloadId;

/// Drives `operations` store+lookup pairs over `distinct_sets` distinct
/// table sets through a proxy of entry type `E`, returning the proxy's
/// traffic counters. `make_entry` builds an entry for a given tag.
fn drive_proxy<E: PvEntry>(
    make_entry: impl Fn(u64) -> E,
    operations: u64,
    distinct_sets: u64,
) -> pv_core::PvStats {
    let config = HierarchyConfig::paper_baseline(4);
    let mut mem = MemoryHierarchy::new(config);
    let mut proxy: PvProxy<E> = PvProxy::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
    for i in 0..operations {
        let index = (i % distinct_sets) | ((i % 7) << 10);
        let entry = make_entry(proxy.tag_of(index));
        proxy.store(index, entry, &mut mem, i * 50);
        let lookup = proxy.lookup(index, &mut mem, i * 50 + 10);
        assert!(
            lookup.entry.is_some(),
            "a just-stored entry must be retrievable"
        );
    }
    *proxy.stats()
}

#[test]
fn both_backends_run_through_the_same_proxy_with_consistent_accounting() {
    const OPERATIONS: u64 = 2_000;
    const DISTINCT_SETS: u64 = 64;

    let sms = drive_proxy(
        |tag| SmsEntry::new(tag as u16, SpatialPattern::from_offsets([1, 5, 9])),
        OPERATIONS,
        DISTINCT_SETS,
    );
    let markov = drive_proxy(
        |tag| MarkovEntry::new(tag as u16, 3).expect("delta 3 is encodable"),
        OPERATIONS,
        DISTINCT_SETS,
    );

    // Identical access streams through the same substrate must produce
    // identical traffic accounting: the proxy's behaviour depends on the
    // index stream and geometry, not on what the payload means.
    for (name, stats) in [("SMS", sms), ("Markov", markov)] {
        assert_eq!(stats.lookups, OPERATIONS, "{name} lookups");
        assert_eq!(stats.stores, OPERATIONS, "{name} stores");
        assert!(stats.memory_requests > 0, "{name} must fetch table sets");
        assert!(
            stats.memory_requests <= stats.lookups + stats.stores,
            "{name}: at most one fetch per operation"
        );
        assert!(stats.pvcache_hits > 0, "{name}: the working set has reuse");
    }
    assert_eq!(
        sms.memory_requests, markov.memory_requests,
        "same index stream + same substrate = same memory traffic, regardless of entry type"
    );
    assert_eq!(sms.pvcache_hits, markov.pvcache_hits);
    assert_eq!(sms.dirty_writebacks, markov.dirty_writebacks);
}

#[test]
fn backend_layouts_and_budgets_derive_from_their_entry_widths() {
    let config = HierarchyConfig::paper_baseline(4);
    let sms: PvProxy<SmsEntry> = PvProxy::new(0, PvConfig::pv8(), config.pv_regions.core_base(0));
    let markov: PvProxy<MarkovEntry> =
        PvProxy::new(1, PvConfig::pv8(), config.pv_regions.core_base(1));

    assert_eq!(sms.layout().entry_bits(), 43);
    assert_eq!(sms.layout().entries_per_block(), 11);
    assert_eq!(markov.layout().entry_bits(), 40);
    assert_eq!(markov.layout().entries_per_block(), 12);
    // Different widths, different budgets — from the same formulas.
    assert_eq!(sms.dedicated_storage_bytes(), 889);
    assert_eq!(markov.dedicated_storage_bytes(), 896);
}

#[test]
fn full_simulations_of_both_virtualized_backends_account_predictor_traffic() {
    let mut config = SimConfig::quick(PrefetcherKind::sms_pv8());
    config.warmup_records = 30_000;
    config.measure_records = 40_000;
    let workload = WorkloadId::Qry1.params();

    let sms = run_workload(&config, &workload);
    let markov = run_workload(
        &config.clone().with_prefetcher(PrefetcherKind::markov_pv8()),
        &workload,
    );

    for (name, metrics) in [("SMS-PV8", &sms), ("Markov-PV8", &markov)] {
        let pv = metrics.pv.as_ref().unwrap_or_else(|| panic!("{name} must expose PV stats"));
        assert!(pv.lookups > 0, "{name} lookups");
        assert!(pv.memory_requests > 0, "{name} memory requests");
        assert!(
            metrics.hierarchy.l2_requests.predictor >= pv.memory_requests,
            "{name}: every proxy fetch is a predictor-classified L2 request"
        );
        assert!(
            metrics.hierarchy.l2_requests.application > metrics.hierarchy.l2_requests.predictor,
            "{name}: application traffic must dominate"
        );
    }
    // The two engines are different predictors, so their table-access
    // streams (and hence PV traffic) legitimately differ — but both flow
    // through the same accounting.
    assert_eq!(sms.configuration, "SMS-PV8");
    assert_eq!(markov.configuration, "Markov-PV8");
}
