//! End-to-end behaviour of the queued contention model: the
//! bandwidth-sensitivity acceptance invariant and the split of queueing
//! delay into application and predictor traffic.

use pv_experiments::{bandwidth, Runner, Scale};
use pv_workloads::WorkloadId;

/// Acceptance invariant of the contention refactor: as configured DRAM
/// bandwidth decreases (cycles per transfer grows), the measured queueing
/// delay rises monotonically — for application traffic and, in virtualized
/// runs, for predictor traffic separately.
#[test]
fn queueing_delay_rises_monotonically_as_bandwidth_falls() {
    let runner = Runner::new(Scale::Smoke, 4);
    let rows = bandwidth::rows_for(&runner, &[WorkloadId::Qry1]);
    for config in ["SMS-1K-11a", "SMS-PV8"] {
        let mut sweep: Vec<&bandwidth::BandwidthRow> =
            rows.iter().filter(|row| row.config == config).collect();
        sweep.sort_by_key(|row| row.cycles_per_transfer);
        assert_eq!(sweep.len(), bandwidth::cycles_per_transfer_sweep().len());
        for pair in sweep.windows(2) {
            assert!(
                pair[0].app_queue_cycles < pair[1].app_queue_cycles,
                "{config}: application queueing must grow as bandwidth falls \
                 (cpt {} -> {}: {} -> {})",
                pair[0].cycles_per_transfer,
                pair[1].cycles_per_transfer,
                pair[0].app_queue_cycles,
                pair[1].app_queue_cycles
            );
            if config == "SMS-PV8" {
                assert!(
                    pair[0].pv_queue_cycles < pair[1].pv_queue_cycles,
                    "{config}: predictor queueing must grow as bandwidth falls \
                     (cpt {} -> {}: {} -> {})",
                    pair[0].cycles_per_transfer,
                    pair[1].cycles_per_transfer,
                    pair[0].pv_queue_cycles,
                    pair[1].pv_queue_cycles
                );
            }
        }
    }
}

#[test]
fn predictor_traffic_queues_only_in_virtualized_runs() {
    let runner = Runner::new(Scale::Smoke, 4);
    let rows = bandwidth::rows_for(&runner, &[WorkloadId::Qry1]);
    for row in &rows {
        if row.config == "SMS-PV8" {
            assert!(
                row.pv_queue_cycles > 0,
                "virtualized runs must observe predictor-class queueing at cpt {}",
                row.cycles_per_transfer
            );
        } else {
            assert_eq!(
                row.pv_queue_cycles, 0,
                "dedicated-table runs have no predictor traffic to queue"
            );
        }
        assert!(row.app_queue_cycles > 0);
        assert!(row.dram_utilization > 0.0);
    }
}

#[test]
fn contention_erodes_the_virtualized_advantage_first() {
    let runner = Runner::new(Scale::Smoke, 4);
    let rows = bandwidth::rows_for(&runner, &[WorkloadId::Qry1]);
    let speedup = |config: &str, cpt: u64| {
        rows.iter()
            .find(|row| row.config == config && row.cycles_per_transfer == cpt)
            .expect("row present")
            .speedup
    };
    let sweep = bandwidth::cycles_per_transfer_sweep();
    let fastest = sweep[0];
    let slowest = sweep[sweep.len() - 1];
    // At ample bandwidth both prefetchers pay off; when the bus is starved,
    // both collapse, and the virtualized design — whose PHT misses consume
    // the same scarce bandwidth — must not fare better than the dedicated
    // table does.
    assert!(speedup("SMS-1K-11a", fastest) > 0.10);
    assert!(speedup("SMS-PV8", fastest) > 0.10);
    assert!(speedup("SMS-1K-11a", slowest) < speedup("SMS-1K-11a", fastest));
    assert!(speedup("SMS-PV8", slowest) < speedup("SMS-PV8", fastest));
    assert!(speedup("SMS-PV8", slowest) <= speedup("SMS-1K-11a", slowest) + 0.01);
}
