//! Guards for the PR-4 dirty-traffic timing fixes.
//!
//! Two holes are closed: write-backs now compete for the L2 tag-pipeline
//! bank ports under `ContentionModel::Queued` (they used to cost zero
//! contended cycles), and the L2 MSHR merge path consults the registration
//! outcome instead of discarding it. These tests pin three things:
//!
//! 1. the new contention is observable (a dirty-write-back storm produces
//!    nonzero `l2_port_delay` and delays subsequent same-bank reads);
//! 2. `Ideal` mode is bit-identical to the BENCH_PR3-era results for every
//!    pre-existing `PrefetcherKind` (digest-pinned against the committed
//!    `BENCH_PR3.json`);
//! 3. the `Queued`-mode digest moved exactly once, to a pinned value — the
//!    expected behaviour change from making write-backs contended.

use pv_experiments::{HierarchyVariant, RunSpec, Runner, Scale};
use pv_mem::{AccessKind, ContentionModel, DataClass, HierarchyConfig, MemoryHierarchy, Requester};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

fn queued_hierarchy() -> MemoryHierarchy {
    MemoryHierarchy::new(
        HierarchyConfig::paper_baseline(2).with_contention(ContentionModel::Queued),
    )
}

/// Satellite-fix acceptance: a storm of dirty write-backs into the same L2
/// bank at the same cycle must serialize on the bank port and surface as
/// `l2_port_delay` — before the fix they cost zero contended cycles.
#[test]
fn queued_writeback_storm_produces_nonzero_l2_port_delay() {
    let mut h = queued_hierarchy();
    let banks = h.config().l2.banks as u64;
    // 32 write-backs, all mapping to bank 0, all issued at cycle 0.
    for i in 0..32u64 {
        h.writeback(Requester::pv_proxy(0), i * banks * 64, 0);
    }
    let stats = h.stats();
    assert!(
        stats.l2_port_delay.total_cycles() > 0,
        "same-bank write-backs must wait for the port"
    );
    assert!(stats.l2_port_delay.application_events() > 0);
}

#[test]
fn queued_writebacks_delay_subsequent_same_bank_reads() {
    let mut h = queued_hierarchy();
    let banks = h.config().l2.banks as u64;
    let occupancy = h.config().l2.port_occupancy;
    // One write-back occupies bank 0's port at cycle 0...
    h.writeback(Requester::pv_proxy(0), 0, 0);
    // ...so a same-cycle read of another bank-0 block starts late.
    let r = h.access(
        Requester::pv_proxy(0),
        banks * 64,
        AccessKind::Read,
        DataClass::Application,
        0,
    );
    assert!(
        r.queue_delay >= occupancy,
        "a read behind a write-back must wait out the port occupancy \
         (delay {}, occupancy {occupancy})",
        r.queue_delay
    );
}

#[test]
fn ideal_writebacks_remain_free_and_unobserved() {
    let mut h = MemoryHierarchy::new(HierarchyConfig::paper_baseline(2));
    for i in 0..32u64 {
        h.writeback(Requester::pv_proxy(0), i * 64, 0);
    }
    assert_eq!(h.stats().l2_port_delay.total_cycles(), 0);
    assert_eq!(h.stats().l2_mshr_merge_failures, 0);
}

/// The L2 MSHR merge path now checks its registration outcome; the
/// merge-failure counter it reports must stay zero through a merge-heavy
/// queued storm (the invariant it guards: a looked-up in-flight entry
/// cannot vanish before registration).
#[test]
fn queued_merge_storm_registers_every_merge() {
    let mut h = queued_hierarchy();
    for wave in 0..8u64 {
        for i in 0..16u64 {
            // Both cores miss on the same block in the same cycle: the
            // second access merges into the first's in-flight fill.
            let addr = 0x100_0000 + (wave * 16 + i) * 64;
            h.access(
                Requester::data(0),
                addr,
                AccessKind::Read,
                DataClass::Application,
                wave * 50,
            );
            h.access(
                Requester::data(1),
                addr,
                AccessKind::Read,
                DataClass::Application,
                wave * 50,
            );
        }
    }
    let stats = h.stats();
    assert_eq!(
        stats.l2_mshr_merge_failures, 0,
        "no merge registration may be dropped"
    );
    assert!(stats.dram_reads > 0);
}

/// Reads one `(prefetcher, workload) -> digest` mapping out of the
/// committed BENCH_PR3.json (one end-to-end row per line).
fn bench_pr3_digests() -> Vec<(String, String, String)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../BENCH_PR3.json");
    let text = std::fs::read_to_string(path).expect("BENCH_PR3.json is committed at the repo root");
    let field = |line: &str, key: &str| -> Option<String> {
        let start = line.find(key)? + key.len();
        let rest = &line[start..];
        Some(rest[..rest.find('"')?].to_owned())
    };
    text.lines()
        .filter_map(|line| {
            Some((
                field(line, "\"prefetcher\": \"")?,
                field(line, "\"workload\": \"")?,
                field(line, "\"digest\": \"")?,
            ))
        })
        .collect()
}

fn kind_by_label(label: &str) -> Option<PrefetcherKind> {
    [
        PrefetcherKind::None,
        PrefetcherKind::sms_1k_16a(),
        PrefetcherKind::sms_1k_11a(),
        PrefetcherKind::sms_16_11a(),
        PrefetcherKind::sms_8_11a(),
        PrefetcherKind::sms_infinite(),
        PrefetcherKind::sms_pv8(),
        PrefetcherKind::sms_pv16(),
        PrefetcherKind::markov_1k(),
        PrefetcherKind::markov_pv8(),
    ]
    .into_iter()
    .find(|kind| kind.label() == label)
}

fn workload_by_name(name: &str) -> WorkloadId {
    WorkloadId::all()
        .into_iter()
        .find(|w| w.name() == name)
        .expect("known workload name")
}

/// Every pre-existing `PrefetcherKind` must still produce, under `Ideal`
/// contention, the exact digests recorded in BENCH_PR3.json (same smoke
/// scale, same seeds): the write-back fix, the MSHR restructure and the
/// whole cohabitation subsystem are gated on never disturbing them.
#[test]
fn ideal_digests_are_bit_identical_to_bench_pr3() {
    let pinned = bench_pr3_digests();
    assert_eq!(
        pinned.len(),
        20,
        "BENCH_PR3.json records 10 kinds x 2 workloads"
    );
    let runner = Runner::with_default_threads(Scale::Smoke);
    let specs: Vec<RunSpec> = pinned
        .iter()
        .map(|(label, workload, _)| {
            RunSpec::base(
                workload_by_name(workload),
                kind_by_label(label).unwrap_or_else(|| panic!("unknown kind label {label}")),
            )
        })
        .collect();
    runner.prefetch(&specs);
    for (spec, (label, workload, digest)) in specs.iter().zip(&pinned) {
        assert_eq!(
            &runner.metrics(spec).digest(),
            digest,
            "{label} on {workload}: Ideal-mode digest moved vs BENCH_PR3"
        );
    }
}

/// The write-back fix is *supposed* to move Queued-mode outcomes (dirty
/// victims now occupy L2 bank ports). This pin records the post-fix digest
/// of one queued configuration so any further unintended drift is caught.
#[test]
fn queued_digest_change_from_the_writeback_fix_is_pinned() {
    let runner = Runner::new(Scale::Smoke, 2);
    let metrics = runner.metrics(&RunSpec {
        workload: WorkloadId::Qry1,
        prefetcher: PrefetcherKind::sms_pv8(),
        hierarchy: HierarchyVariant::QueuedDram {
            cycles_per_transfer: 64,
        },
    });
    assert_eq!(
        metrics.digest(),
        "cycles=2600740|instr=381112|l2req=52918+10981|l2miss=38767+1101|l2wb=35+0|\
         dram=39868r35w|cov=21579c15712u4268o|pf=27087",
        "Queued-mode digest drifted from the value recorded when write-backs \
         became contended (PR 4)"
    );
}
