//! Queued-mode corner litmus tests.
//!
//! Compound corners of the contention model that no single-mechanism test
//! exercises: a demand read arriving behind a dirty victim *while* the
//! L2 MSHR file is full (both backpressure mechanisms stack on one
//! request), a secondary miss whose L2 line was evicted while its fill
//! was still in flight, merging into the draining MSHR entry instead of
//! issuing duplicate DRAM traffic, and a DRAM channel filled to its
//! `queue_depth` through the L2 boundary, where the overflow requests'
//! slot waits must surface cycle-exactly in the queueing-delay statistics.
//! Each litmus pins the relevant [`DelayBreakdown`] counters
//! cycle-for-cycle and an end-to-end Queued digest so drift in either
//! corner is loud.

use pv_experiments::{HierarchyVariant, RunSpec, Runner, Scale};
use pv_mem::{
    AccessKind, Address, ContentionModel, DataClass, HierarchyConfig, MemoryHierarchy, Requester,
};
use pv_sim::PrefetcherKind;
use pv_workloads::WorkloadId;

fn queued_hierarchy() -> MemoryHierarchy {
    MemoryHierarchy::new(
        HierarchyConfig::paper_baseline(2).with_contention(ContentionModel::Queued),
    )
}

/// Corner 1: a read that arrives behind a dirty victim's write-back to its
/// own L2 bank *while the L2 MSHR file is full* pays both waits on one
/// request — the bank-port occupancy behind the write-back, then the full
/// MSHR drain. Neither mechanism may mask the other.
#[test]
fn mshr_full_behind_a_dirty_victim_in_the_same_bank_stacks_both_waits() {
    let mut h = queued_hierarchy();
    let cap = h.config().l2.mshr_entries;
    let banks = h.config().l2.banks as u64;
    let occupancy = h.config().l2.port_occupancy;

    // Fill every MSHR slot: `cap` distinct-block misses at cycle 0, striped
    // round-robin across the banks. Every fill is in flight for at least
    // the 400-cycle unloaded DRAM latency.
    for i in 0..cap as u64 {
        h.access(
            Requester::pv_proxy(0),
            0x200_0000 + i * 64,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
    }
    let before = h.stats();
    assert_eq!(before.dram_reads, cap as u64);
    assert_eq!(
        before.mshr_stall_delay.total_cycles(),
        0,
        "filling the file to capacity must not itself stall"
    );

    // A dirty victim is written back into bank 0 at cycle 20 (after the
    // fill storm's port waves have drained), then a demand read to a
    // different bank-0 block lands on the same cycle.
    h.writeback(Requester::pv_proxy(0), 0x300_0000, 20);
    let r = h.access(
        Requester::pv_proxy(0),
        0x300_0000 + banks * 64,
        AccessKind::Read,
        DataClass::Application,
        20,
    );

    let after = h.stats();
    // The port wait behind the write-back is visible...
    assert!(
        after.l2_port_delay.total_cycles() > before.l2_port_delay.total_cycles(),
        "the read must wait out the write-back's port occupancy"
    );
    // ...and exactly one request then stalled on the full MSHR file, for
    // most of an outstanding fill's remaining flight time.
    assert_eq!(after.mshr_stall_delay.application_events(), 1);
    assert_eq!(after.mshr_stall_delay.predictor_events(), 0);
    let stall = after.mshr_stall_delay.application_cycles();
    assert!(
        stall > 300,
        "draining a slot takes most of the 400-cycle DRAM flight (got {stall})"
    );
    // Both waits stack on the one response: port occupancy + MSHR drain.
    assert!(
        r.queue_delay >= occupancy + stall,
        "queue_delay {} must include the port wait (>= {occupancy}) and the \
         MSHR stall ({stall})",
        r.queue_delay
    );
    assert_eq!(after.dram_reads, cap as u64 + 1);
    assert_eq!(after.l2_mshr_merge_failures, 0);
}

/// Corner 2: a block whose L2 line is evicted while its fill is still in
/// flight leaves its MSHR entry behind; a secondary miss during the file's
/// drain must merge into that entry — riding the in-flight fill instead of
/// issuing a duplicate DRAM read.
#[test]
fn a_secondary_miss_during_the_mshr_drain_merges_into_the_inflight_fill() {
    let mut h = queued_hierarchy();
    let sets = 8 * 1024 * 1024 / (64 * 16) as u64; // L2: 8 MB, 16-way, 64 B
    let same_set_stride = sets * 64;
    let unloaded = h.config().dram.latency;

    // An early unrelated miss whose fill retires first — its drain is what
    // the secondary miss later arrives "during".
    h.access(
        Requester::pv_proxy(0),
        0x600_0000,
        AccessKind::Read,
        DataClass::Application,
        0,
    );
    // The victim block X misses at cycle 40 (fill in flight until at least
    // cycle 40 + 400)...
    let x = 0x400_0000u64;
    h.access(
        Requester::pv_proxy(0),
        x,
        AccessKind::Read,
        DataClass::Application,
        40,
    );
    assert!(h.l2_contains(Address::new(x).block()));
    // ...and 16 conflicting fills to the same set evict X's line while its
    // fill is still outstanding.
    for way in 1..=16u64 {
        h.access(
            Requester::pv_proxy(0),
            x + way * same_set_stride,
            AccessKind::Read,
            DataClass::Application,
            40,
        );
    }
    assert!(
        !h.l2_contains(Address::new(x).block()),
        "16 same-set fills must evict X's in-flight line"
    );
    let before = h.stats();
    assert_eq!(before.dram_reads, 18);

    // Cycle 420: the early fill (ready ~406) has drained, X's fill (ready
    // >= 446) is still in flight. The re-miss on X must merge.
    let r = h.access(
        Requester::pv_proxy(1),
        x,
        AccessKind::Read,
        DataClass::Application,
        420,
    );
    let after = h.stats();
    assert_eq!(
        after.dram_reads, before.dram_reads,
        "the merged secondary miss must not issue a duplicate DRAM read"
    );
    assert_eq!(after.l2_mshr_merge_failures, 0, "the merge must register");
    assert!(
        r.latency < unloaded,
        "riding the in-flight fill must beat a fresh {unloaded}-cycle DRAM \
         round trip (got {})",
        r.latency
    );
    assert_eq!(
        after.mshr_stall_delay.total_cycles(),
        0,
        "a merge never waits for a free MSHR slot"
    );
}

/// Corner 3 (ROADMAP item 5's litmus): DRAM queue-depth backpressure at
/// the L2 boundary. One channel is filled to exactly `queue_depth` with
/// simultaneous L2 misses, then two more arrive: each overflow request
/// must wait precisely one unloaded DRAM latency for the oldest in-flight
/// request's slot — no more, no less — and the waits must land in the
/// queueing-delay breakdown cycle-for-cycle.
///
/// The geometry removes every other wait so the slot wait is the *only*
/// contribution: one channel with a bank per request (no bank
/// serialization), an ideal data bus (`cycles_per_transfer = 0`, no
/// transfer queueing), distinct L2 banks (no port waits) and a roomy MSHR
/// file (no MSHR stalls). With all requests issued at cycle 0, the first
/// `queue_depth` fills all complete at the same cycle, so each overflow
/// request's admission cycle is exactly that completion cycle.
#[test]
fn filling_one_channel_to_queue_depth_charges_exact_slot_waits() {
    let depth = 4usize;
    let mut config = HierarchyConfig::paper_baseline(2).with_contention(ContentionModel::Queued);
    config.dram.channels = 1;
    config.dram.banks_per_channel = 32;
    config.dram.queue_depth = depth;
    config.dram.cycles_per_transfer = 0;
    let unloaded = config.dram.latency;
    let mut h = MemoryHierarchy::new(config);

    // `depth` distinct blocks: distinct L2 banks (8 banks, block % 8) and
    // distinct DRAM banks (block % 32), all missing at cycle 0.
    for i in 0..depth as u64 {
        let r = h.access(
            Requester::pv_proxy(0),
            i * 64,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        assert_eq!(
            r.queue_delay, 0,
            "request {i} fits in the queue and must not wait"
        );
    }
    let filled = h.stats();
    assert_eq!(filled.dram_queue_delay.total_cycles(), 0);

    // Two overflow requests: each must wait out exactly one unloaded DRAM
    // flight for a slot (every in-flight fill completes at the same cycle,
    // and the ideal bus adds nothing on top).
    for i in depth as u64..depth as u64 + 2 {
        let r = h.access(
            Requester::pv_proxy(0),
            i * 64,
            AccessKind::Read,
            DataClass::Application,
            0,
        );
        assert_eq!(
            r.queue_delay, unloaded,
            "overflow request {i} must wait exactly one slot drain"
        );
    }
    let after = h.stats();
    assert_eq!(after.dram_queue_delay.application_cycles(), 2 * unloaded);
    assert_eq!(after.dram_queue_delay.application_events(), 2);
    assert_eq!(after.dram_queue_delay.predictor_cycles(), 0);
    assert_eq!(after.l2_port_delay.total_cycles(), 0, "distinct L2 banks");
    assert_eq!(after.mshr_stall_delay.total_cycles(), 0, "roomy MSHR file");
    assert_eq!(after.dram_reads, depth as u64 + 2);
}

/// End-to-end pin for corner 3's configuration class: a virtualized SMS
/// run under queued contention with a narrow data bus, where PV-region and
/// demand fills keep the channel queues at depth and slot waits are
/// routine.
#[test]
fn queued_sms_pv8_narrow_bus_digest_is_pinned() {
    let runner = Runner::new(Scale::Smoke, 2);
    let metrics = runner.metrics(&RunSpec {
        workload: WorkloadId::Qry1,
        prefetcher: PrefetcherKind::sms_pv8(),
        hierarchy: HierarchyVariant::QueuedDram {
            cycles_per_transfer: 128,
        },
    });
    assert_eq!(
        metrics.digest(),
        "cycles=5005348|instr=381112|l2req=52918+10981|l2miss=38769+1101|l2wb=36+0|\
         dram=39870r36w|cov=21579c15712u4268o|pf=27087",
        "Queued sms-pv8 narrow-bus digest drifted"
    );
}

/// End-to-end pin for corner 1's configuration class: a virtualized Markov
/// run under queued contention (dirty Markov-table victims write back into
/// contended banks while demand fills hold MSHR slots).
#[test]
fn queued_markov_pv8_digest_is_pinned() {
    let runner = Runner::new(Scale::Smoke, 2);
    let metrics = runner.metrics(&RunSpec {
        workload: WorkloadId::Db2,
        prefetcher: PrefetcherKind::markov_pv8(),
        hierarchy: HierarchyVariant::QueuedDram {
            cycles_per_transfer: 64,
        },
    });
    assert_eq!(
        metrics.digest(),
        "cycles=7043456|instr=415337|l2req=150223+151852|l2miss=95769+275|l2wb=4814+71|\
         dram=96044r4885w|cov=2628c35368u65508o|pf=68781",
        "Queued markov-pv8 digest drifted"
    );
}

/// End-to-end pin for corner 2's configuration class: the scarce cohabiting
/// SMS+Markov pair under queued contention (two predictors' PV traffic
/// shares one region, one PVC$ and the L2 MSHR file, so merges during
/// drains are routine).
#[test]
fn queued_cohabitation_digest_is_pinned() {
    let runner = Runner::new(Scale::Smoke, 2);
    let metrics = runner.metrics(&RunSpec {
        workload: WorkloadId::Apache,
        prefetcher: PrefetcherKind::composite_shared_scarce(8),
        hierarchy: HierarchyVariant::QueuedDram {
            cycles_per_transfer: 64,
        },
    });
    assert_eq!(
        metrics.digest(),
        "cycles=4510483|instr=452300|l2req=101316+70979|l2miss=65965+320|l2wb=1002+4|\
         dram=66285r1006w|cov=2634c31789u32190o|pf=35264",
        "Queued cohabitation digest drifted"
    );
}
