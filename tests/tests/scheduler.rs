//! Scheduler differential tests: the event-heap run loop must reproduce
//! the reference scan's behaviour *exactly* — the same core stepped at
//! every single decision point (the step trace) and therefore the same
//! interleaving at the shared L2 and bit-identical metrics digests.

use pv_mem::{ContentionModel, HierarchyConfig};
use pv_sim::{PrefetcherKind, Scheduler, SimConfig, System};
use pv_trace::Scenario;
use pv_workloads::{
    workloads, AccessStream, TakeStream, TraceGenerator, WorkloadId, WorkloadParams,
};

/// A small config for `cores` cores so the differential sweeps stay fast.
fn config(cores: usize, prefetcher: PrefetcherKind, seed: u64) -> SimConfig {
    let mut config = SimConfig::quick(prefetcher);
    config.cores = cores;
    config.hierarchy = HierarchyConfig::paper_baseline(cores);
    config.warmup_records = 4_000;
    config.measure_records = 6_000;
    config.seed = seed;
    config
}

/// Runs `config` over the streams `build` yields under both schedulers and
/// asserts the step orders and digests are identical.
fn assert_schedulers_agree(
    config: &SimConfig,
    build: impl Fn(&SimConfig) -> Vec<Box<dyn AccessStream>>,
) {
    let mut heap = System::from_streams(config.clone(), build(config));
    let mut reference = System::from_streams(config.clone(), build(config));
    assert_eq!(
        heap.scheduler(),
        Scheduler::EventHeap,
        "heap is the default"
    );
    reference.set_scheduler(Scheduler::ReferenceScan);
    heap.record_step_trace(true);
    reference.record_step_trace(true);

    let heap_metrics = heap.run();
    let reference_metrics = reference.run();

    let heap_trace = heap.take_step_trace();
    let reference_trace = reference.take_step_trace();
    assert_eq!(
        heap_trace.len(),
        reference_trace.len(),
        "schedulers took a different number of steps"
    );
    if let Some(step) = heap_trace.iter().zip(&reference_trace).position(|(a, b)| a != b) {
        panic!(
            "step order diverged at step {step}: heap chose core {}, reference core {}",
            heap_trace[step], reference_trace[step]
        );
    }
    assert_eq!(
        heap_metrics.digest(),
        reference_metrics.digest(),
        "identical step order must yield identical digests"
    );
    assert!(heap.records_consumed().eq(reference.records_consumed()));
    assert!(heap.exhausted().eq(reference.exhausted()));
}

/// One generator stream per core, each core on its own workload.
fn generator_streams(config: &SimConfig) -> Vec<Box<dyn AccessStream>> {
    let rotation = [
        workloads::qry1(),
        workloads::apache(),
        workloads::db2(),
        workloads::qry17(),
        workloads::qry2(),
    ];
    (0..config.cores)
        .map(|core| {
            let workload: &WorkloadParams = &rotation[core % rotation.len()];
            Box::new(TraceGenerator::new(workload, config.seed, core)) as Box<dyn AccessStream>
        })
        .collect()
}

#[test]
fn heap_matches_reference_on_mixed_generators_1_to_8_cores() {
    for cores in 1..=8 {
        let config = config(cores, PrefetcherKind::None, 7 + cores as u64);
        assert_schedulers_agree(&config, generator_streams);
    }
}

#[test]
fn heap_matches_reference_with_prefetchers_and_contention() {
    for (seed, kind) in [
        (11, PrefetcherKind::sms_1k_11a()),
        (13, PrefetcherKind::sms_pv8()),
        (17, PrefetcherKind::markov_1k()),
    ]
    .into_iter()
    {
        let mut config = config(4, kind, seed);
        if seed == 13 {
            config.hierarchy = config.hierarchy.with_contention(ContentionModel::Queued);
        }
        assert_schedulers_agree(&config, generator_streams);
    }
}

#[test]
fn heap_matches_reference_when_finite_streams_exhaust_mid_phase() {
    // Limits straddle every interesting boundary: mid-warmup, exactly at
    // the phase edge, mid-measurement, and beyond the run.
    let config = config(4, PrefetcherKind::sms_1k_11a(), 23);
    let full = config.warmup_records + config.measure_records;
    let limits = [
        config.warmup_records / 2,
        config.warmup_records,
        config.warmup_records + config.measure_records / 3,
        full + 1_000,
    ];
    assert_schedulers_agree(&config, move |config| {
        (0..config.cores)
            .map(|core| {
                let generator = TraceGenerator::new(&workloads::qry1(), config.seed, core);
                Box::new(TakeStream::new(generator, limits[core])) as Box<dyn AccessStream>
            })
            .collect()
    });
}

#[test]
fn heap_matches_reference_on_scenario_streams() {
    let config = config(4, PrefetcherKind::sms_pv8(), 29);
    let scenario = Scenario::PhaseFlip {
        a: WorkloadId::Qry1,
        b: WorkloadId::Apache,
        period: 2_500,
    };
    assert_schedulers_agree(&config, move |config| {
        scenario.build_streams(config.cores, config.seed)
    });
}

/// Regression: a core that exhausts *inside* the run-until-overtaken burst
/// (here: a single core, so the heap is empty and the burst never ends
/// until the stream dries up) must retire cleanly, leave the heap, and
/// report coherent statistics.
#[test]
fn core_exhausting_inside_burst_retires_cleanly() {
    let solo = config(1, PrefetcherKind::sms_1k_11a(), 31);
    let short = solo.warmup_records + solo.measure_records / 2;
    let mut system = System::from_streams(
        solo.clone(),
        vec![Box::new(TakeStream::new(
            TraceGenerator::new(&workloads::qry1(), solo.seed, 0),
            short,
        )) as Box<dyn AccessStream>],
    );
    let metrics = system.run();
    assert!(system.records_consumed().eq([short]));
    assert!(system.exhausted().eq([true]));
    assert!(metrics.total_instructions > 0);
    assert!(metrics.per_core_ipc.iter().all(|&ipc| ipc > 0.0));

    // And the multi-core variant: the lagging core bursts while the others
    // idle far ahead, then runs dry mid-burst — differentially checked.
    let multi = config(3, PrefetcherKind::None, 37);
    let short = multi.warmup_records / 3;
    assert_schedulers_agree(&multi, move |config| {
        (0..config.cores)
            .map(|core| {
                let generator = TraceGenerator::new(&workloads::qry17(), config.seed, core);
                let stream: Box<dyn AccessStream> = if core == 1 {
                    Box::new(TakeStream::new(generator, short))
                } else {
                    Box::new(generator)
                };
                stream
            })
            .collect()
    });
}
