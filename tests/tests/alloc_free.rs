//! Allocation-freedom guards for the per-record hot path.
//!
//! This binary swaps in a counting global allocator and asserts that the
//! L1-hit access path performs **zero** heap allocations per record, and
//! that a warmed-up simulation phase stays allocation-free end to end.
//! Everything allocation-sensitive lives in the single test below: the
//! libtest harness runs tests in this binary concurrently, and a second
//! test's setup allocations would contaminate the counter.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use pv_mem::{AccessKind, ContentionModel, EvictionBuffer, HierarchyConfig, MemoryHierarchy};
use pv_sim::{PrefetcherKind, SimConfig, System};
use pv_trace::{record_generator, ReplayStream};
use pv_workloads::{workloads, AccessStream};

/// Counts every allocation and reallocation; frees are not interesting.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn hot_paths_do_not_allocate() {
    // --- L1-hit fast path: strictly zero allocations per access. ---
    let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::paper_baseline(1));
    let mut evictions = EvictionBuffer::default();
    let blocks: Vec<u64> = (0..32u64).map(|i| i * 64).collect();
    // Warm the set: the misses below may touch MSHRs/DRAM bookkeeping.
    for &addr in &blocks {
        hierarchy.access_data(0, addr, AccessKind::Read, 0, &mut evictions);
    }
    let before = allocations();
    let mut latency_sum = 0u64;
    for round in 1..=1_000u64 {
        for &addr in &blocks {
            let response =
                hierarchy.access_data(0, addr, AccessKind::Read, round * 100, &mut evictions);
            latency_sum += response.latency;
        }
    }
    assert!(latency_sum > 0);
    assert_eq!(
        allocations() - before,
        0,
        "the L1-hit access path must not heap-allocate"
    );

    // --- Whole-system steady state: with replayed traces (decode from a
    // borrowed byte slice, no per-record work in the generator) a warmed-up
    // scheduling phase must reuse every buffer — event heap, targets,
    // action scratch, AGT update, eviction scratch — and allocate nothing.
    // Queued contention exercises extra hot-path machinery the Ideal runs
    // never touch — L2 port scalars, MSHR backpressure waits, and the
    // per-channel DRAM in-flight rings (fixed-capacity since PR 10, so the
    // contended drain/admit path must also stay at zero).
    let phase = 10_000u64;
    for contention in [ContentionModel::Ideal, ContentionModel::Queued] {
        for kind in [PrefetcherKind::None, PrefetcherKind::sms_1k_11a()] {
            // Window sizes are irrelevant here — `run_records` drives phases
            // directly — but validation requires a non-empty measurement
            // window.
            let mut config = SimConfig::quick(kind.clone());
            config.warmup_records = 0;
            config.measure_records = 1;
            config.hierarchy = config.hierarchy.with_contention(contention);
            let streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
                .map(|core| {
                    let bytes =
                        record_generator(&workloads::qry1(), config.seed, core as u32, 3 * phase)
                            .expect("records fit the default layout");
                    Box::new(ReplayStream::new(bytes).expect("valid trace"))
                        as Box<dyn AccessStream>
                })
                .collect();
            let mut system = System::from_streams(config, streams);
            // The first phases grow scratch capacities to their high-water
            // marks (heap, targets, actions, AGT update, accuracy backlogs).
            system.run_records(phase);
            system.run_records(phase);
            let before = allocations();
            system.run_records(phase);
            let grew = allocations() - before;
            assert_eq!(
                grew, 0,
                "a warmed-up {contention:?} phase must be allocation-free \
                 ({kind:?}: {grew} allocations)"
            );
        }
    }
}
