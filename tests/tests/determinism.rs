//! Determinism guards for the contention-aware timing refactor.
//!
//! The contention model added hidden shared state (L2 port busy-cycles, DRAM
//! channel queues, MSHR drain waits). None of it may introduce
//! nondeterminism: the same seed and configuration must produce a
//! bit-identical `RunMetrics` digest whether the experiment runner uses one
//! worker thread or many, and across back-to-back runs — the seeded-replay
//! discipline that keeps every recorded number reproducible.

use pv_experiments::fleet::{run_fleet, FleetGrid, FleetWorkload};
use pv_experiments::{cohabit, HierarchyVariant, MixSpec, RunSpec, Runner, Scale, ScenarioSpec};
use pv_mem::ContentionModel;
use pv_sim::{run_streams, PrefetcherKind};
use pv_trace::{record_generator, ReplayStream, Scenario};
use pv_workloads::{workloads, AccessStream, WorkloadId};

/// The specs exercised: ideal and queued hierarchies; dedicated,
/// virtualized and cohabiting prefetchers.
fn specs() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for prefetcher in [PrefetcherKind::None, PrefetcherKind::sms_pv8()] {
        specs.push(RunSpec::base(WorkloadId::Qry1, prefetcher.clone()));
        specs.push(RunSpec {
            workload: WorkloadId::Qry1,
            prefetcher,
            hierarchy: HierarchyVariant::QueuedDram {
                cycles_per_transfer: 64,
            },
        });
    }
    // Cohabiting kinds: two engines per core sharing one region (and, for
    // the shared kind, one PVCache through the composite-owned proxy) must
    // replay bit-identically too, under both timing models.
    for prefetcher in [
        PrefetcherKind::composite_dedicated(4),
        PrefetcherKind::composite_shared(8),
    ] {
        for contention in [ContentionModel::Ideal, ContentionModel::Queued] {
            specs.push(RunSpec {
                workload: WorkloadId::Qry1,
                prefetcher: prefetcher.clone(),
                hierarchy: HierarchyVariant::PvRegion {
                    bytes_per_core: cohabit::PV_BYTES_PER_CORE,
                    contention,
                },
            });
        }
    }
    specs
}

fn digests(runner: &Runner) -> Vec<String> {
    specs().iter().map(|spec| runner.metrics(spec).digest()).collect()
}

#[test]
fn single_and_multi_threaded_runners_agree_bit_for_bit() {
    let serial = Runner::new(Scale::Smoke, 1);
    let parallel = Runner::new(Scale::Smoke, 8);
    parallel.prefetch(&specs()); // fan the runs out over worker threads
    assert_eq!(
        digests(&serial),
        digests(&parallel),
        "thread count must not change any simulated outcome"
    );
}

#[test]
fn consecutive_runs_agree_bit_for_bit() {
    let first = Runner::new(Scale::Smoke, 2);
    let second = Runner::new(Scale::Smoke, 2);
    assert_eq!(
        digests(&first),
        digests(&second),
        "two runs of the same seed and configuration must be identical"
    );
    // Within one runner the cache must have deduplicated the work.
    assert_eq!(first.runs_executed(), specs().len());
}

#[test]
fn queued_contention_digests_are_reproducible_for_mixes() {
    let mix = [
        WorkloadId::Apache,
        WorkloadId::Db2,
        WorkloadId::Qry1,
        WorkloadId::Qry17,
    ];
    let spec = MixSpec {
        workloads: mix,
        prefetcher: PrefetcherKind::sms_pv8(),
        hierarchy: HierarchyVariant::QueuedDram {
            cycles_per_transfer: 32,
        },
    };
    let a = Runner::new(Scale::Smoke, 1).metrics_mixed(&spec).digest();
    let b = Runner::new(Scale::Smoke, 4).metrics_mixed(&spec).digest();
    assert_eq!(a, b, "mixed queued runs must replay identically");
}

/// The scenario specs exercised by the thread-count guard: every scenario
/// shape (flip, flash crowd, diurnal, antagonist) plus the throttled flip
/// under queued bandwidth — scenario streams rebuild generators mid-run,
/// which must not depend on which worker thread executes the run.
fn scenario_specs() -> Vec<ScenarioSpec> {
    let flip = Scenario::PhaseFlip {
        a: WorkloadId::Qry1,
        b: WorkloadId::Apache,
        period: 10_000,
    };
    vec![
        ScenarioSpec::base(flip, PrefetcherKind::sms_pv8()),
        ScenarioSpec {
            scenario: flip,
            prefetcher: PrefetcherKind::sms_pv8_throttled(),
            hierarchy: HierarchyVariant::QueuedDramEpoch {
                cycles_per_transfer: 64,
                accuracy_epoch: 8,
            },
        },
        ScenarioSpec::base(
            Scenario::FlashCrowd {
                workload: WorkloadId::Oracle,
                calm: 10_000,
                spike: 5_000,
                intensity_pct: 250,
            },
            PrefetcherKind::sms_pv8(),
        ),
        ScenarioSpec::base(
            Scenario::Diurnal {
                workload: WorkloadId::Db2,
                period: 20_000,
                steps: 8,
                amplitude_pct: 60,
            },
            PrefetcherKind::sms_pv8(),
        ),
        ScenarioSpec::base(
            Scenario::Antagonist {
                workload: WorkloadId::Qry1,
            },
            PrefetcherKind::sms_pv8(),
        ),
    ]
}

fn scenario_digests(runner: &Runner) -> Vec<String> {
    scenario_specs()
        .iter()
        .map(|spec| runner.metrics_scenario(spec).digest())
        .collect()
}

#[test]
fn scenario_runs_agree_across_thread_counts() {
    let serial = Runner::new(Scale::Smoke, 1);
    let parallel = Runner::new(Scale::Smoke, 8);
    parallel.prefetch_scenarios(&scenario_specs());
    assert_eq!(
        scenario_digests(&serial),
        scenario_digests(&parallel),
        "thread count must not change any scenario outcome"
    );
}

/// A small but representative fleet grid: ideal and queued bandwidth
/// points, a virtualized and a cohabiting kind, the throttle axis, a
/// heterogeneous mix and a non-stationary scenario.
fn fleet_points() -> Vec<pv_experiments::FleetPoint> {
    let grid = FleetGrid {
        kinds: vec![
            PrefetcherKind::sms_pv8(),
            PrefetcherKind::composite_shared(8),
        ],
        workloads: vec![
            FleetWorkload::Homogeneous(WorkloadId::Qry1),
            FleetWorkload::Mix([
                WorkloadId::Apache,
                WorkloadId::Db2,
                WorkloadId::Qry1,
                WorkloadId::Qry17,
            ]),
            FleetWorkload::Scenario(Scenario::PhaseFlip {
                a: WorkloadId::Qry1,
                b: WorkloadId::Apache,
                period: 10_000,
            }),
        ],
        cycles_per_transfer: vec![0, 64],
        throttle: true,
    };
    grid.points()
}

/// Sorted `"run"` rows of one sweep (row *order* is completion order and
/// may legitimately differ across thread counts; row *content* may not).
fn fleet_rows(threads: usize) -> Vec<String> {
    let mut out = Vec::new();
    let summary = run_fleet(fleet_points(), Scale::Smoke, threads, &mut out);
    assert_eq!(summary.points, fleet_points().len());
    let text = String::from_utf8(out).expect("fleet output is UTF-8");
    let mut rows: Vec<String> = text
        .lines()
        .filter(|line| line.starts_with("{\"type\": \"run\""))
        .map(str::to_owned)
        .collect();
    rows.sort();
    rows
}

#[test]
fn fleet_sweeps_agree_bit_for_bit_across_thread_counts() {
    let serial = fleet_rows(1);
    let parallel = fleet_rows(4);
    assert_eq!(serial.len(), fleet_points().len());
    assert_eq!(
        serial, parallel,
        "work-stealing must not change any simulated outcome, only completion order"
    );
    // The grid really covers the risky shapes: throttled points and the
    // scenario/mix workloads all made it into the row set.
    assert!(serial.iter().any(|row| row.contains("\"throttled\": true")));
    assert!(serial.iter().any(|row| row.contains("\"workload\": \"mix:")));
    assert!(serial.iter().any(|row| row.contains("\"workload\": \"flip:")));
}

#[test]
fn replay_runs_are_reproducible() {
    // Two independent replays of the same recorded bytes must agree with
    // each other and with the live generator run they were recorded from.
    let config = Scale::Smoke.config(PrefetcherKind::sms_pv8());
    let workload = workloads::qry1();
    let per_core = config.warmup_records + config.measure_records;
    let traces: Vec<Vec<u8>> = (0..config.cores)
        .map(|core| {
            record_generator(&workload, config.seed, core as u32, per_core)
                .expect("records fit the default layout")
        })
        .collect();
    let replay_once = || {
        let streams: Vec<Box<dyn AccessStream>> = traces
            .iter()
            .map(|bytes| {
                Box::new(ReplayStream::new(bytes.clone()).expect("valid trace"))
                    as Box<dyn AccessStream>
            })
            .collect();
        run_streams(&config, streams).digest()
    };
    let live = pv_sim::run_workload(&config, &workload).digest();
    let first = replay_once();
    let second = replay_once();
    assert_eq!(first, second, "replaying the same bytes twice must agree");
    assert_eq!(
        first, live,
        "replay must agree with the live run it recorded"
    );
}

#[test]
fn ideal_and_queued_runs_differ_but_only_in_timing_dependent_fields() {
    let runner = Runner::new(Scale::Smoke, 2);
    let ideal = runner.metrics(&RunSpec::base(WorkloadId::Qry1, PrefetcherKind::sms_pv8()));
    let queued = runner.metrics(&RunSpec {
        workload: WorkloadId::Qry1,
        prefetcher: PrefetcherKind::sms_pv8(),
        hierarchy: HierarchyVariant::QueuedDram {
            cycles_per_transfer: 64,
        },
    });
    assert_ne!(
        ideal.digest(),
        queued.digest(),
        "contention must actually change the simulated outcome"
    );
    // The instruction stream is identical either way: the measurement window
    // consumes a fixed number of trace records per core.
    assert_eq!(ideal.total_instructions, queued.total_instructions);
    assert!(queued.elapsed_cycles > ideal.elapsed_cycles);
}
