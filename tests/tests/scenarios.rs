//! Non-stationary scenario guards: finite streams end runs cleanly, the
//! feedback throttle re-converges after a phase flip (level trace pinned),
//! and cohabiting predictors keep serving their tables as demand shifts.

use pv_experiments::scenarios::{reconvergence_per_core, throttle_hierarchy};
use pv_experiments::{HierarchyVariant, RunSpec, Runner, Scale, ScenarioSpec};
use pv_mem::ContentionModel;
use pv_sim::{run_streams, PrefetcherKind, SimConfig, System};
use pv_trace::{record_generator, ReplayStream, Scenario};
use pv_workloads::{workloads, AccessStream, WorkloadId};

/// The controlled flip configuration used by the pinned tests: smoke-scale
/// windows, scarce queued bandwidth, and a short accuracy epoch so the
/// throttle completes several feedback epochs per workload phase.
fn flip_config(kind: PrefetcherKind) -> SimConfig {
    let mut config = SimConfig::quick(kind);
    config.warmup_records = 20_000;
    config.measure_records = 30_000;
    config.hierarchy = throttle_hierarchy().build(config.cores);
    config
}

/// Qry1 (accurate) → Apache (wasteful) flips, one phase per 10k records:
/// the warmup window covers the first Qry1→Apache cycle, the measurement
/// window covers Qry1 → Apache → Qry1 — an observable ratchet-up on the
/// middle Apache phase bracketed by accurate phases to relax into.
fn flip_scenario() -> Scenario {
    Scenario::PhaseFlip {
        a: WorkloadId::Qry1,
        b: WorkloadId::Apache,
        period: 10_000,
    }
}

#[test]
fn finite_streams_terminate_a_scenario_run_cleanly() {
    // Record 3.5 of the 5 phases the run demands per core, then replay:
    // every core must run dry mid-measurement without hanging or panicking,
    // and the run must report exactly the recorded records as consumed.
    let config = flip_config(PrefetcherKind::sms_pv8_throttled());
    let recorded = 35_000u64;
    let streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
        .map(|core| {
            let bytes = flip_scenario()
                .record(core, config.cores, config.seed, recorded)
                .expect("scenario records fit the default layout");
            Box::new(ReplayStream::new(bytes).expect("valid trace")) as Box<dyn AccessStream>
        })
        .collect();
    let mut system = System::from_streams(config.clone(), streams);
    let metrics = system.run();
    assert!(system.records_consumed().eq(vec![recorded; config.cores]));
    assert!(system.exhausted().eq(vec![true; config.cores]));
    assert!(metrics.total_instructions > 0);
    assert!(metrics.elapsed_cycles > 0);
}

/// The pinned throttle level trace for the flip run (measurement window
/// only; statistics reset at the warmup boundary). Each entry is
/// `c<core>s<sample>l<level>`: at accuracy sample `sample` (1-based,
/// per-core), `core`'s controller moved to `level`. The trace encodes the
/// whole story — ratchet-up when Apache's wasteful prefetches trip the
/// accuracy watermark, relaxation back toward level 0 when Qry1 returns.
const PINNED_LEVEL_TRACE: &str = "c0s1l3 c0s5l4 c0s8l3 c0s9l4 c0s13l3 c0s15l2 c0s17l1 c0s18l0 \
     c0s37l1 c0s39l2 c0s40l3 c1s1l3 c1s3l2 c1s4l1 c1s5l0 c1s36l1 c1s37l0 c1s71l1 c1s72l0 \
     c1s73l1 c1s74l0 c1s75l1 c1s76l2 c1s77l3 c1s78l4 c1s91l3 c1s92l4 c2s6l3 c2s7l4 c2s13l3 \
     c2s14l2 c2s16l1 c2s17l0 c2s67l1 c2s68l0 c2s75l1 c2s76l2 c2s78l1 c2s79l0 c2s81l1 c2s82l2 \
     c3s1l3 c3s3l2 c3s4l1 c3s5l0 c3s55l1 c3s56l0 c3s61l1 c3s62l0 c3s68l1 c3s69l2 c3s70l3 c3s71l4";

/// Every re-converging core must return to level 0 within this many
/// accuracy epochs of leaving its peak level (the re-convergence bound the
/// scenarios experiment measures).
const RECONVERGENCE_EPOCH_BOUND: u64 = 16;

#[test]
fn throttle_reconverges_after_a_phase_flip() {
    let config = flip_config(PrefetcherKind::sms_pv8_throttled());
    let streams = flip_scenario().build_streams(config.cores, config.seed);
    let metrics = run_streams(&config, streams);
    let throttle = metrics.throttle.expect("throttled prefetcher records throttle metrics");

    let rendered: Vec<String> = throttle
        .level_trace
        .iter()
        .map(|c| format!("c{}s{}l{}", c.core, c.sample, c.level))
        .collect();
    assert_eq!(
        rendered.join(" "),
        PINNED_LEVEL_TRACE,
        "the throttle's response to the phase flip changed"
    );

    let recon = reconvergence_per_core(&throttle.level_trace, config.cores);
    assert!(
        recon.iter().any(|r| r.peak_level > 0),
        "the Apache phases must drive at least one core into throttling"
    );
    let mut reconverged = 0;
    for r in &recon {
        if let Some(epochs) = r.epochs_to_reconverge {
            assert!(
                epochs <= RECONVERGENCE_EPOCH_BOUND,
                "core {} took {} epochs to re-converge (bound {})",
                r.core,
                epochs,
                RECONVERGENCE_EPOCH_BOUND
            );
            reconverged += 1;
        }
    }
    assert!(
        reconverged >= 1,
        "at least one core must re-converge to level 0 within the run"
    );
}

#[test]
fn cohabiting_tables_keep_serving_under_a_phase_flip() {
    // The shared composite (SMS + Markov in one PV region) run under the
    // flip: both tables must stay live — lookups flowing and the Markov
    // table retaining a materially higher PVC$ hit rate (its working set is
    // smaller), exactly the contrast the cohabitation experiment reports.
    let runner = Runner::new(Scale::Smoke, 2);
    let kind = PrefetcherKind::composite_shared(8);
    let spec = ScenarioSpec {
        scenario: Scenario::PhaseFlip {
            a: WorkloadId::Qry1,
            b: WorkloadId::Apache,
            period: 10_000,
        },
        prefetcher: kind.clone(),
        hierarchy: HierarchyVariant::PvRegion {
            bytes_per_core: kind.pv_bytes_per_core(),
            contention: ContentionModel::Ideal,
        },
    };
    let metrics = runner.metrics_scenario(&spec);
    assert_eq!(metrics.pv_tables.len(), 2, "SMS and Markov must cohabit");
    for table in &metrics.pv_tables {
        let ratio = table.stats.pvcache_hit_ratio();
        assert!(
            (0.0..=1.0).contains(&ratio),
            "{}: PVC$ hit ratio {ratio} out of range",
            table.label
        );
    }
    let markov = metrics
        .pv_tables
        .iter()
        .find(|t| t.label.to_ascii_lowercase().contains("markov"))
        .expect("markov table present");
    let sms = metrics
        .pv_tables
        .iter()
        .find(|t| !t.label.to_ascii_lowercase().contains("markov"))
        .expect("sms table present");
    assert!(
        markov.stats.pvcache_hit_ratio() > sms.stats.pvcache_hit_ratio(),
        "the smaller Markov working set should out-hit SMS in the PVC$ \
         (markov {:.3} vs sms {:.3})",
        markov.stats.pvcache_hit_ratio(),
        sms.stats.pvcache_hit_ratio()
    );
}

#[test]
fn scenario_streams_are_reproducible_and_phase_varied() {
    // Same (core, seed) → identical stream; repeated instances of the same
    // workload phase must NOT replay identical records (each instance is
    // reseeded), otherwise predictors would see an artificial loop.
    let scenario = flip_scenario();
    let mut s1 = scenario.build_streams(4, 7).remove(0);
    let mut s2 = scenario.build_streams(4, 7).remove(0);
    let first: Vec<_> = (0..25_000).map_while(|_| s1.next_record()).collect();
    let second: Vec<_> = (0..25_000).map_while(|_| s2.next_record()).collect();
    assert_eq!(first, second, "scenario streams must be deterministic");
    // Phase 0 (Qry1, records 0..10k) and phase 2 (Qry1 again, 20k..25k
    // sampled) must differ: the second Qry1 instance is reseeded.
    assert_ne!(
        &first[..5_000],
        &first[20_000..25_000],
        "repeated phases must not replay identical records"
    );
}

#[test]
fn recorded_scenario_replays_identically() {
    // A scenario trace recorded to bytes and replayed must drive the
    // simulator to the same digest as the live scenario streams.
    let config = flip_config(PrefetcherKind::sms_pv8_throttled());
    let per_core = config.warmup_records + config.measure_records;
    let live = run_streams(
        &config,
        flip_scenario().build_streams(config.cores, config.seed),
    );
    let replayed_streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
        .map(|core| {
            let bytes = flip_scenario()
                .record(core, config.cores, config.seed, per_core)
                .expect("scenario records fit");
            Box::new(ReplayStream::new(bytes).expect("valid trace")) as Box<dyn AccessStream>
        })
        .collect();
    let replayed = run_streams(&config, replayed_streams);
    assert_eq!(
        live.digest(),
        replayed.digest(),
        "recorded scenario must replay bit-identically"
    );
}

#[test]
fn antagonist_occupies_only_the_last_core() {
    let scenario = Scenario::Antagonist {
        workload: WorkloadId::Qry1,
    };
    let mut streams = scenario.build_streams(4, 11);
    let labels: Vec<String> = streams.iter().map(|s| s.label().to_owned()).collect();
    assert_eq!(
        labels[3], "Antagonist",
        "last core runs the antagonist: {labels:?}"
    );
    for label in &labels[..3] {
        assert_eq!(
            label, "Qry1",
            "victim cores run the base workload: {labels:?}"
        );
    }
    // All four streams produce records.
    for stream in streams.iter_mut() {
        assert!(stream.next_record().is_some());
    }
}

#[test]
fn a_recorded_workload_replays_through_the_runner_config() {
    // Sanity link between the trace layer and the experiment layer: a
    // recorded homogeneous workload replayed under the runner's smoke
    // config matches the runner's own live run digest.
    let runner = Runner::new(Scale::Smoke, 1);
    let live = runner.metrics(&RunSpec::base(WorkloadId::Qry16, PrefetcherKind::None));
    let config = Scale::Smoke.config(PrefetcherKind::None);
    let per_core = config.warmup_records + config.measure_records;
    let streams: Vec<Box<dyn AccessStream>> = (0..config.cores)
        .map(|core| {
            let bytes = record_generator(&workloads::qry16(), config.seed, core as u32, per_core)
                .expect("records fit");
            Box::new(ReplayStream::new(bytes).expect("valid trace")) as Box<dyn AccessStream>
        })
        .collect();
    let replayed = run_streams(&config, streams);
    assert_eq!(live.digest(), replayed.digest());
}
