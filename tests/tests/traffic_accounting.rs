//! Traffic accounting across crates: the virtualized predictor's extra L2
//! requests, its near-zero off-chip footprint, and the application/predictor
//! classification of memory traffic (paper Sections 4.3 and Figures 6-8).

use pv_sim::{run_workload, PrefetcherKind, RunMetrics, SimConfig};
use pv_workloads::WorkloadId;

fn run(workload: WorkloadId, prefetcher: PrefetcherKind) -> RunMetrics {
    let mut config = SimConfig::quick(prefetcher);
    config.warmup_records = 40_000;
    config.measure_records = 50_000;
    run_workload(&config, &workload.params())
}

#[test]
fn virtualization_adds_l2_requests_but_little_offchip_traffic() {
    let workload = WorkloadId::Zeus;
    let dedicated = run(workload, PrefetcherKind::sms_1k_11a());
    let virtualized = run(workload, PrefetcherKind::sms_pv8());

    let request_increase = virtualized.l2_request_increase_over(&dedicated);
    assert!(
        request_increase > 0.05 && request_increase < 0.80,
        "PV should add a noticeable but bounded number of L2 requests (got {:.1}%)",
        request_increase * 100.0
    );

    let offchip_increase = virtualized.offchip_increase_over(&dedicated);
    assert!(
        offchip_increase < 0.15,
        "PV's off-chip traffic increase must stay small (got {:.1}%)",
        offchip_increase * 100.0
    );
}

#[test]
fn predictor_traffic_is_classified_separately_from_application_traffic() {
    let virtualized = run(WorkloadId::Qry16, PrefetcherKind::sms_pv8());
    assert!(virtualized.hierarchy.l2_requests.predictor > 0);
    assert!(virtualized.hierarchy.l2_requests.application > 0);
    assert!(
        virtualized.hierarchy.l2_requests.application > virtualized.hierarchy.l2_requests.predictor,
        "application traffic must dominate"
    );
    // Dedicated configurations never produce predictor-classified traffic.
    let dedicated = run(WorkloadId::Qry16, PrefetcherKind::sms_1k_11a());
    assert_eq!(dedicated.hierarchy.l2_requests.predictor, 0);
    assert_eq!(dedicated.hierarchy.l2_writebacks.predictor, 0);
}

#[test]
fn most_pvproxy_requests_are_filled_by_the_l2() {
    let virtualized = run(WorkloadId::Qry2, PrefetcherKind::sms_pv8());
    let requests = virtualized.hierarchy.l2_requests.predictor;
    let misses = virtualized.hierarchy.l2_misses.predictor;
    assert!(requests > 0);
    let filled_on_chip = 1.0 - misses as f64 / requests as f64;
    assert!(
        filled_on_chip > 0.90,
        "the paper reports >98% of PVProxy requests filled by the L2; got {:.1}%",
        filled_on_chip * 100.0
    );
}

#[test]
fn prefetching_reduces_l1_read_misses() {
    let workload = WorkloadId::Qry1;
    let baseline = run(workload, PrefetcherKind::None);
    let prefetched = run(workload, PrefetcherKind::sms_1k_11a());
    let baseline_misses = baseline.hierarchy.l1d_total().read_misses;
    let prefetched_misses = prefetched.hierarchy.l1d_total().read_misses;
    assert!(
        prefetched_misses < baseline_misses,
        "SMS must eliminate L1 read misses ({prefetched_misses} vs {baseline_misses})"
    );
}

#[test]
fn offchip_bandwidth_accounting_is_consistent() {
    let metrics = run(WorkloadId::Apache, PrefetcherKind::sms_pv8());
    let stats = &metrics.hierarchy;
    assert_eq!(
        stats.offchip_bytes(),
        (stats.l2_misses.total() + stats.l2_writebacks.total()) * 64
    );
    assert!(stats.offchip_predictor_bytes() <= stats.offchip_bytes());
    // Every DRAM write corresponds to an L2 write-back; DRAM reads can be
    // fewer than L2 misses because concurrent misses to one block merge in
    // the L2 MSHRs.
    assert_eq!(stats.dram_writes, stats.l2_writebacks.total());
    assert!(stats.dram_reads <= stats.l2_misses.total());
    assert!(stats.dram_reads > 0);
}
