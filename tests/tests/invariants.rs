//! Property-based tests of cross-crate invariants: the PVTable packing
//! codec, PHT index arithmetic, address round-trips, and coverage
//! accounting.

use proptest::prelude::*;
use pv_core::{decode_set, encode_set, PvConfig, PvSet};
use pv_mem::Address;
use pv_sms::{PhtIndex, SpatialPattern, TriggerKey};

proptest! {
    /// Any set of (tag, non-empty pattern) entries survives the 64-byte
    /// packing round trip of Figure 3a.
    #[test]
    fn packed_pvtable_sets_round_trip(
        entries in proptest::collection::vec((0u16..2048, 1u32..=u32::MAX), 0..=11)
    ) {
        let config = PvConfig::pv8();
        let mut set = PvSet::new(config.ways);
        let mut expected = std::collections::HashMap::new();
        for (tag, bits) in entries {
            set.insert(tag, SpatialPattern::from_bits(bits));
            expected.insert(tag, bits);
        }
        let decoded = decode_set(&encode_set(&set, &config), &config);
        prop_assert_eq!(decoded.len(), set.len());
        for entry in set.iter() {
            prop_assert_eq!(decoded.peek(entry.tag), Some(entry.pattern));
        }
    }

    /// The encoded block never exceeds one cache block and always leaves the
    /// Figure 3a trailer bits unused.
    #[test]
    fn packed_sets_always_fit_one_block(tags in proptest::collection::vec(0u16..2048, 0..=11)) {
        let config = PvConfig::pv8();
        let mut set = PvSet::new(config.ways);
        for (i, tag) in tags.iter().enumerate() {
            set.insert(*tag, SpatialPattern::from_bits(0x8000_0000 | i as u32 + 1));
        }
        let encoded = encode_set(&set, &config);
        prop_assert_eq!(encoded.len() as u64, config.block_bytes);
        let used_bits = config.ways * config.entry_bits as usize;
        for bit in used_bits..(config.block_bytes * 8) as usize {
            prop_assert_eq!(encoded[bit / 8] & (1 << (bit % 8)), 0);
        }
    }

    /// PHT set index and tag always reconstruct the 21-bit index, for every
    /// power-of-two table size the sweeps use.
    #[test]
    fn pht_index_set_tag_reconstruction(pc in any::<u64>(), offset in 0u32..32, sets_log2 in 3u32..=10) {
        let sets = 1usize << sets_log2;
        let index = TriggerKey::new(pc, offset).index();
        let rebuilt = (index.tag(sets) << sets_log2) | index.set_index(sets) as u32;
        prop_assert_eq!(rebuilt, index.raw());
        prop_assert!(index.set_index(sets) < sets);
        prop_assert_eq!(PhtIndex::from_raw(index.raw()), index);
    }

    /// Byte address <-> block <-> region arithmetic is consistent for the
    /// 32-block regions SMS uses.
    #[test]
    fn address_block_region_round_trip(raw in any::<u64>()) {
        let addr = Address::new(raw & 0x0000_FFFF_FFFF_FFFF);
        let block = addr.block();
        prop_assert_eq!(block.base_address().block(), block);
        prop_assert!(addr.block_offset() < 64);
        let region = block.region(32);
        let offset = block.region_offset(32);
        prop_assert_eq!(region.block_at(offset, 32), block);
        prop_assert!(offset < 32);
    }

    /// Spatial patterns: building from offsets and reading offsets back are
    /// inverse operations, and `without` removes exactly one offset.
    #[test]
    fn spatial_pattern_offsets_round_trip(offsets in proptest::collection::btree_set(0u32..32, 0..=32)) {
        let pattern = SpatialPattern::from_offsets(offsets.iter().copied());
        let back: std::collections::BTreeSet<u32> = pattern.offsets().collect();
        prop_assert_eq!(&back, &offsets);
        prop_assert_eq!(pattern.count() as usize, offsets.len());
        if let Some(&first) = offsets.iter().next() {
            let without = pattern.without(first);
            prop_assert!(!without.contains(first));
            prop_assert_eq!(without.count() + 1, pattern.count());
        }
    }

    /// Coverage accounting never produces fractions outside [0, 1] and the
    /// baseline decomposition always adds up.
    #[test]
    fn coverage_metrics_are_well_formed(covered in 0u64..1_000_000, uncovered in 0u64..1_000_000, over in 0u64..1_000_000) {
        let coverage = pv_sim::CoverageMetrics { covered, uncovered, overpredictions: over };
        prop_assert_eq!(coverage.baseline_misses(), covered + uncovered);
        prop_assert!(coverage.coverage() >= 0.0 && coverage.coverage() <= 1.0);
        prop_assert!(coverage.overprediction_ratio() >= 0.0);
    }
}

#[test]
fn pv_regions_never_overlap_workload_address_spaces() {
    // Deterministic cross-crate invariant: the reserved PVTable regions of
    // all cores are disjoint from every address the workload generators can
    // emit (checked statistically in pv-workloads; here we check the layout
    // boundaries directly).
    let hierarchy = pv_mem::HierarchyConfig::paper_baseline(4);
    for core in 0..4 {
        let base = hierarchy.pv_regions.core_base(core).raw();
        let end = base + hierarchy.pv_regions.bytes_per_core;
        assert!(base >= 3 * 1024 * 1024 * 1024 - hierarchy.pv_regions.total_bytes());
        assert!(end <= 3 * 1024 * 1024 * 1024);
    }
}

#[test]
fn proxy_storage_budget_is_monotonic_in_every_resource() {
    use pv_core::PvStorageBudget;
    let base = PvStorageBudget::for_config(&PvConfig::pv8()).total_bytes();
    let mut bigger_cache = PvConfig::pv8();
    bigger_cache.pvcache_sets *= 2;
    let mut bigger_mshr = PvConfig::pv8();
    bigger_mshr.mshr_entries *= 2;
    let mut bigger_evict = PvConfig::pv8();
    bigger_evict.evict_buffer_entries *= 2;
    for config in [bigger_cache, bigger_mshr, bigger_evict] {
        assert!(PvStorageBudget::for_config(&config).total_bytes() > base);
    }
}
