//! Property-based tests of cross-crate invariants: the generic PVTable
//! packing codec (randomized entry widths and occupancy), PHT index
//! arithmetic, address round-trips, and coverage accounting.
//!
//! The properties are exercised with a seeded deterministic RNG: hundreds of
//! random cases per property, fully reproducible.

use pv_core::{decode_set, encode_set, PvConfig, PvEntry, PvLayout, PvSet, RawEntry};
use pv_mem::Address;
use pv_sms::{PhtIndex, SmsEntry, SpatialPattern, TriggerKey, VirtualizedPht};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x0001_AB4D_5EED)
}

/// A random layout that fits 64-byte blocks: 4..=20 tag bits, 4..=44
/// payload bits.
fn random_layout(rng: &mut StdRng) -> PvLayout {
    let tag_bits = rng.gen_range(4u32..=20);
    let payload_bits = rng.gen_range(4u32..=44);
    PvLayout::new(tag_bits, payload_bits, 64)
}

/// A random set for `layout` with the given occupancy, with in-range tags
/// and valid (non-zero) in-range payloads.
fn random_set(rng: &mut StdRng, layout: &PvLayout, occupancy: usize) -> PvSet<RawEntry> {
    let mut set = PvSet::new(layout.entries_per_block());
    for _ in 0..occupancy {
        let tag = rng.gen_range(0u64..=layout.max_tag());
        let payload = rng.gen_range(1u64..=layout.max_payload());
        set.insert(RawEntry::new(tag, payload));
    }
    set
}

/// Any set of valid entries survives the packed round trip of Figure 3a,
/// for randomized entry widths and occupancies — the codec is generic, not
/// specialised to the paper's 11 × 43-bit instance.
#[test]
fn packed_pvtable_sets_round_trip_across_random_layouts() {
    let mut rng = rng();
    for _ in 0..300 {
        let layout = random_layout(&mut rng);
        let occupancy = rng.gen_range(0usize..=layout.entries_per_block());
        let set = random_set(&mut rng, &layout, occupancy);
        let decoded: PvSet<RawEntry> = decode_set(&encode_set(&set, &layout), &layout);
        assert_eq!(decoded.len(), set.len(), "layout {layout:?}");
        for entry in set.iter() {
            assert_eq!(
                decoded.peek(entry.tag),
                Some(entry),
                "tag {:#x} under layout {layout:?}",
                entry.tag
            );
        }
        // Recency order survives too.
        let original: Vec<u64> = set.iter().map(|e| e.tag).collect();
        let rebuilt: Vec<u64> = decoded.iter().map(|e| e.tag).collect();
        assert_eq!(original, rebuilt, "recency order under layout {layout:?}");
    }
}

/// The encoded block never exceeds one cache block and always leaves the
/// Figure 3a trailer bits unused, whatever the entry widths.
#[test]
fn packed_sets_always_fit_one_block() {
    let mut rng = rng();
    for _ in 0..300 {
        let layout = random_layout(&mut rng);
        let set = random_set(&mut rng, &layout, layout.entries_per_block());
        let encoded = encode_set(&set, &layout);
        assert_eq!(encoded.len() as u64, layout.block_bytes);
        let used_bits = layout.entries_per_block() * layout.entry_bits() as usize;
        for bit in used_bits..(layout.block_bytes * 8) as usize {
            assert_eq!(
                encoded[bit / 8] & (1 << (bit % 8)),
                0,
                "trailer bit {bit} dirty under layout {layout:?}"
            );
        }
    }
}

/// Regression pin: the paper's SMS instance of the generic machinery is
/// exactly the Figure 3a layout — 11 entries of 43 bits — and the Section
/// 4.6 PV-8 budget is exactly 889 bytes.
#[test]
fn paper_sms_instance_is_pinned() {
    let layout = PvLayout::of::<SmsEntry>(64);
    assert_eq!(layout.entry_bits(), 43);
    assert_eq!(layout.entries_per_block(), 11);
    assert_eq!(layout.unused_trailing_bits(), 39);
    assert_eq!(
        VirtualizedPht::storage_budget(&PvConfig::pv8()).total_bytes(),
        889
    );
}

/// SMS entries round-trip through the packed encoding with their pattern
/// payloads intact.
#[test]
fn sms_entries_round_trip_through_the_generic_codec() {
    let mut rng = rng();
    let layout = PvLayout::of::<SmsEntry>(64);
    for _ in 0..200 {
        let occupancy = rng.gen_range(0usize..=11);
        let mut set = PvSet::new(layout.entries_per_block());
        for _ in 0..occupancy {
            let tag = rng.gen_range(0u64..2048) as u16;
            let bits = rng.gen_range(1u64..=u64::from(u32::MAX)) as u32;
            set.insert(SmsEntry::new(tag, SpatialPattern::from_bits(bits)));
        }
        let decoded: PvSet<SmsEntry> = decode_set(&encode_set(&set, &layout), &layout);
        assert_eq!(decoded.len(), set.len());
        for entry in set.iter() {
            assert_eq!(decoded.peek(entry.tag()), Some(entry));
        }
    }
}

/// PHT set index and tag always reconstruct the 21-bit index, for every
/// power-of-two table size the sweeps use.
#[test]
fn pht_index_set_tag_reconstruction() {
    let mut rng = rng();
    for _ in 0..300 {
        let pc: u64 = rng.gen();
        let offset = rng.gen_range(0u32..32);
        let sets_log2 = rng.gen_range(3u32..=10);
        let sets = 1usize << sets_log2;
        let index = TriggerKey::new(pc, offset).index();
        let rebuilt = (index.tag(sets) << sets_log2) | index.set_index(sets) as u32;
        assert_eq!(rebuilt, index.raw());
        assert!(index.set_index(sets) < sets);
        assert_eq!(PhtIndex::from_raw(index.raw()), index);
    }
}

/// Byte address <-> block <-> region arithmetic is consistent for the
/// 32-block regions SMS uses.
#[test]
fn address_block_region_round_trip() {
    let mut rng = rng();
    for _ in 0..300 {
        let raw: u64 = rng.gen();
        let addr = Address::new(raw & 0x0000_FFFF_FFFF_FFFF);
        let block = addr.block();
        assert_eq!(block.base_address().block(), block);
        assert!(addr.block_offset() < 64);
        let region = block.region(32);
        let offset = block.region_offset(32);
        assert_eq!(region.block_at(offset, 32), block);
        assert!(offset < 32);
    }
}

/// Spatial patterns: building from offsets and reading offsets back are
/// inverse operations, and `without` removes exactly one offset.
#[test]
fn spatial_pattern_offsets_round_trip() {
    let mut rng = rng();
    for _ in 0..300 {
        let mut offsets = std::collections::BTreeSet::new();
        for _ in 0..rng.gen_range(0usize..=32) {
            offsets.insert(rng.gen_range(0u32..32));
        }
        let pattern = SpatialPattern::from_offsets(offsets.iter().copied());
        let back: std::collections::BTreeSet<u32> = pattern.offsets().collect();
        assert_eq!(back, offsets);
        assert_eq!(pattern.count() as usize, offsets.len());
        if let Some(&first) = offsets.iter().next() {
            let without = pattern.without(first);
            assert!(!without.contains(first));
            assert_eq!(without.count() + 1, pattern.count());
        }
    }
}

/// Coverage accounting never produces fractions outside [0, 1] and the
/// baseline decomposition always adds up.
#[test]
fn coverage_metrics_are_well_formed() {
    let mut rng = rng();
    for _ in 0..300 {
        let covered = rng.gen_range(0u64..1_000_000);
        let uncovered = rng.gen_range(0u64..1_000_000);
        let over = rng.gen_range(0u64..1_000_000);
        let coverage = pv_sim::CoverageMetrics {
            covered,
            uncovered,
            overpredictions: over,
        };
        assert_eq!(coverage.baseline_misses(), covered + uncovered);
        assert!(coverage.coverage() >= 0.0 && coverage.coverage() <= 1.0);
        assert!(coverage.overprediction_ratio() >= 0.0);
    }
}

#[test]
fn pv_regions_never_overlap_workload_address_spaces() {
    // Deterministic cross-crate invariant: the reserved PVTable regions of
    // all cores are disjoint from every address the workload generators can
    // emit (checked statistically in pv-workloads; here we check the layout
    // boundaries directly).
    let hierarchy = pv_mem::HierarchyConfig::paper_baseline(4);
    for core in 0..4 {
        let base = hierarchy.pv_regions.core_base(core).raw();
        let end = base + hierarchy.pv_regions.bytes_per_core;
        assert!(base >= 3 * 1024 * 1024 * 1024 - hierarchy.pv_regions.total_bytes());
        assert!(end <= 3 * 1024 * 1024 * 1024);
    }
}

#[test]
fn proxy_storage_budget_is_monotonic_in_every_resource() {
    let base = VirtualizedPht::storage_budget(&PvConfig::pv8()).total_bytes();
    let mut bigger_cache = PvConfig::pv8();
    bigger_cache.pvcache_sets *= 2;
    let mut bigger_mshr = PvConfig::pv8();
    bigger_mshr.mshr_entries *= 2;
    let mut bigger_evict = PvConfig::pv8();
    bigger_evict.evict_buffer_entries *= 2;
    for config in [bigger_cache, bigger_mshr, bigger_evict] {
        assert!(VirtualizedPht::storage_budget(&config).total_bytes() > base);
    }
}
