//! End-to-end behaviour of predictor cohabitation: SMS and Markov sharing
//! one PV region — and, in the shared arrangement, one table-tagged PVCache
//! — on every core.

use pv_core::{PvConfig, PvRegionPlan, SharedPvProxy};
use pv_experiments::{cohabit, HierarchyVariant, RunSpec, Runner, Scale};
use pv_markov::{MarkovIndex, NextAddrStorage, SharedVirtualizedMarkov};
use pv_mem::{ContentionModel, HierarchyConfig, MemoryHierarchy};
use pv_sim::PrefetcherKind;
use pv_sms::{PatternStorage, SharedVirtualizedPht, SpatialPattern, TriggerKey};
use pv_workloads::WorkloadId;

/// The two backends cohabit one proxy: different entry widths, different
/// sub-regions, one cache, separate per-table statistics.
#[test]
fn sms_and_markov_share_one_proxy_and_one_cache() {
    let config = HierarchyConfig::paper_baseline(4).with_pv_bytes_per_core(128 * 1024);
    let mut mem = MemoryHierarchy::new(config);
    let pv = PvConfig::pv8();
    let plan = PvRegionPlan::new(config.pv_regions, vec![pv.table_bytes(), pv.table_bytes()]);
    let mut shared = SharedPvProxy::new(0, pv);
    let mut sms = SharedVirtualizedPht::new(&mut shared, pv, plan.base(0, 0));
    let mut markov = SharedVirtualizedMarkov::new(&mut shared, pv, plan.base(0, 1));

    let pattern = SpatialPattern::from_offsets([1, 4, 7]);
    sms.store(
        TriggerKey::new(0x4000, 1).index(),
        pattern,
        &mut mem,
        Some(&mut shared),
        0,
    );
    markov.store(
        MarkovIndex::from_pc(0x8000),
        3,
        &mut mem,
        Some(&mut shared),
        10,
    );

    assert_eq!(shared.tables(), 2);
    assert_eq!(shared.table_label(0), "SMS");
    assert_eq!(shared.table_label(1), "Markov");
    assert_eq!(shared.table_stats(0).stores, 1);
    assert_eq!(shared.table_stats(1).stores, 1);
    assert_eq!(shared.cache().occupancy_of(0), 1);
    assert_eq!(shared.cache().occupancy_of(1), 1);

    // Each adapter still retrieves its own entries through the shared cache.
    assert_eq!(
        sms.lookup(
            TriggerKey::new(0x4000, 1).index(),
            &mut mem,
            Some(&mut shared),
            2_000
        )
        .pattern,
        Some(pattern)
    );
    assert_eq!(
        markov
            .lookup(
                MarkovIndex::from_pc(0x8000),
                &mut mem,
                Some(&mut shared),
                2_000
            )
            .delta,
        Some(3)
    );
    // All of it flowed through one Requester::pv_proxy stream at the L2.
    assert!(mem.stats().l2_requests.predictor >= 2);
}

/// One table's working set can evict the other's sets — the arbitration a
/// per-predictor PVCache cannot express.
#[test]
fn one_table_can_claim_the_whole_shared_cache() {
    let config = HierarchyConfig::paper_baseline(4).with_pv_bytes_per_core(128 * 1024);
    let mut mem = MemoryHierarchy::new(config);
    let pv = PvConfig::pv8();
    let plan = PvRegionPlan::new(config.pv_regions, vec![pv.table_bytes(), pv.table_bytes()]);
    let mut shared = SharedPvProxy::new(0, pv);
    let mut sms = SharedVirtualizedPht::new(&mut shared, pv, plan.base(0, 0));
    let mut markov = SharedVirtualizedMarkov::new(&mut shared, pv, plan.base(0, 1));

    // Markov touches one set; SMS then streams through more sets than the
    // cache holds, displacing it entirely.
    markov.store(
        MarkovIndex::from_pc(0x8000),
        3,
        &mut mem,
        Some(&mut shared),
        0,
    );
    let capacity = pv.pvcache_sets;
    for i in 0..(capacity + 2) as u64 {
        sms.store(
            TriggerKey::new(0x4000 + i * 4, 1).index(),
            SpatialPattern::from_offsets([1, 2]),
            &mut mem,
            Some(&mut shared),
            1_000 + i * 1_000,
        );
    }
    assert_eq!(
        shared.cache().occupancy_of(1),
        0,
        "Markov's set was displaced"
    );
    assert_eq!(shared.cache().occupancy_of(0), capacity);
    assert_eq!(shared.table_stats(1).dirty_writebacks, 1);
    // The displaced delta survives in memory and comes back on demand.
    assert_eq!(
        markov
            .lookup(
                MarkovIndex::from_pc(0x8000),
                &mut mem,
                Some(&mut shared),
                1_000_000
            )
            .delta,
        Some(3)
    );
}

/// The headline cohabitation result at smoke scale: with equal total
/// on-chip capacity, the shared PVCache serves SMS + Markov with *less*
/// predictor L2 traffic than the dedicated split, because capacity flows to
/// whichever table is hot.
#[test]
fn shared_pvcache_reduces_predictor_traffic_vs_dedicated_split() {
    let runner = Runner::new(Scale::Smoke, 4);
    let rows = cohabit::rows_for(&runner, &[WorkloadId::Qry1]);
    let ideal = |config: &str| {
        rows.iter()
            .find(|r| r.config == config && r.variant.ends_with("ideal"))
            .expect("row present")
    };
    let dedicated = ideal("SMS+Markov-2xPV4");
    let shared = ideal("SMS+Markov-shPV8");
    assert!(
        shared.l2_predictor_requests < dedicated.l2_predictor_requests,
        "pooling the PVCache must cut predictor L2 traffic ({} vs {})",
        shared.l2_predictor_requests,
        dedicated.l2_predictor_requests
    );
    // The capacity flowed to the hot table: Markov's hit rate rises.
    let hit = |row: &cohabit::CohabitRow, label: &str| {
        row.tables.iter().find(|t| t.label == label).unwrap().stats.pvcache_hit_ratio()
    };
    assert!(
        hit(shared, "Markov") > hit(dedicated, "Markov"),
        "the shared cache must serve the hot table better ({:.3} vs {:.3})",
        hit(shared, "Markov"),
        hit(dedicated, "Markov")
    );
    // Both tables are genuinely served simultaneously.
    for row in [dedicated, shared] {
        for table in &row.tables {
            assert!(
                table.stats.lookups > 0,
                "{}: {} starved",
                row.config,
                table.label
            );
            assert!(
                table.stats.stores > 0,
                "{}: {} never stored",
                row.config,
                table.label
            );
        }
    }
}

/// Under queued contention the cohabiting tables' traffic competes for the
/// same shared resources, and the split of queueing delay is reported per
/// table.
#[test]
fn queued_cohabitation_reports_per_table_queue_delays() {
    let runner = Runner::new(Scale::Smoke, 4);
    let spec = RunSpec {
        workload: WorkloadId::Qry1,
        prefetcher: PrefetcherKind::composite_shared(8),
        hierarchy: HierarchyVariant::PvRegion {
            bytes_per_core: cohabit::PV_BYTES_PER_CORE,
            contention: ContentionModel::Queued,
        },
    };
    let metrics = runner.metrics(&spec);
    assert_eq!(metrics.pv_tables.len(), 2);
    for table in &metrics.pv_tables {
        assert!(
            table.stats.queue_delay_cycles > 0,
            "{} must observe contention under Queued",
            table.label
        );
    }
    let delay = metrics.hierarchy.total_queue_delay();
    assert!(delay.predictor_cycles() > 0);
    assert!(delay.application_cycles() > 0);
}

/// The cohabiting pair must still *prefetch usefully*: coverage and issued
/// prefetches are nonzero, and both dedicated and shared arrangements beat
/// the no-prefetch baseline on the scan workload under the ideal hierarchy.
#[test]
fn cohabiting_prefetchers_still_cover_misses_and_speed_up_scans() {
    let runner = Runner::new(Scale::Smoke, 4);
    let rows = cohabit::rows_for(&runner, &[WorkloadId::Qry1]);
    for row in rows.iter().filter(|r| r.variant.ends_with("ideal")) {
        assert!(row.coverage > 0.2, "{}: scan coverage too low", row.config);
        assert!(
            row.speedup > 0.0,
            "{}: cohabiting prefetchers must beat NoPrefetch on Qry1 (got {:.3})",
            row.config,
            row.speedup
        );
    }
}
