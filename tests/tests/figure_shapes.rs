//! Shape checks for the paper's figures, run through the experiment harness
//! at smoke scale: the orderings the paper's conclusions rest on must hold.

use pv_experiments::{fig4, fig9, Runner, Scale};
use pv_workloads::WorkloadId;

fn runner() -> Runner {
    Runner::new(Scale::Smoke, 4)
}

#[test]
fn figure4_large_tables_beat_small_tables_on_capacity_sensitive_workloads() {
    let runner = runner();
    let rows = fig4::rows_for(&runner, &[WorkloadId::Oracle]);
    let coverage = |config: &str| {
        rows.iter()
            .find(|r| r.config == config)
            .unwrap_or_else(|| panic!("missing config {config}"))
            .covered
    };
    let infinite = coverage("Infinite");
    let large = coverage("1K-11a");
    let small = coverage("8-11a");
    assert!(
        (infinite - large).abs() < 0.05,
        "1K sets must be within a few per cent of the infinite table ({large:.3} vs {infinite:.3})"
    );
    assert!(
        small < large * 0.5,
        "8 sets must lose most of the coverage ({small:.3} vs {large:.3})"
    );
}

#[test]
fn figure4_dss_scan_degrades_more_gently_than_oltp() {
    let runner = runner();
    let rows = fig4::rows_for(&runner, &[WorkloadId::Oracle, WorkloadId::Qry1]);
    let retention = |workload: &str| {
        let large = rows
            .iter()
            .find(|r| r.workload == workload && r.config == "1K-11a")
            .unwrap()
            .covered;
        let small = rows
            .iter()
            .find(|r| r.workload == workload && r.config == "8-11a")
            .unwrap()
            .covered;
        if large == 0.0 {
            0.0
        } else {
            small / large
        }
    };
    assert!(
        retention("Qry1") > retention("Oracle"),
        "the scan query must retain more of its coverage with a tiny PHT than OLTP does"
    );
}

#[test]
fn figure9_virtualized_matches_dedicated_and_beats_small_tables() {
    let runner = runner();
    let rows = fig9::rows_for(&runner, &[WorkloadId::Qry2]);
    assert_eq!(rows.len(), 1);
    let speedups = &rows[0].speedups; // [SMS-1K, SMS-16, SMS-8, SMS-PV8]
    assert!(speedups[0] > 0.0, "SMS-1K must provide a speedup");
    assert!(
        (speedups[0] - speedups[3]).abs() < 0.05,
        "SMS-PV8 must match SMS-1K ({:.3} vs {:.3})",
        speedups[3],
        speedups[0]
    );
    assert!(
        speedups[2] < speedups[0],
        "the 8-set dedicated table must trail the 1K-set table"
    );
}

#[test]
fn experiment_runner_reuses_cached_simulations_across_figures() {
    let runner = runner();
    let _ = fig9::rows_for(&runner, &[WorkloadId::Qry1]);
    let executed_after_fig9 = runner.runs_executed();
    // Figure 4 shares the SMS-1K-11a, 16-11a and 8-11a runs with Figure 9.
    let _ = fig4::rows_for(&runner, &[WorkloadId::Qry1]);
    let executed_after_fig4 = runner.runs_executed();
    assert!(
        executed_after_fig4 - executed_after_fig9 <= 2,
        "only the Infinite and 1K-16a configurations should require new runs, got {} new",
        executed_after_fig4 - executed_after_fig9
    );
}
