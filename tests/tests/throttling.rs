//! Acceptance tests for the feedback-directed throttling subsystem and its
//! `throttle` experiment.
//!
//! The headline invariant (the PR-5 acceptance criterion): at the scarcest
//! bandwidth point of the sweep, the throttled variant strictly reduces
//! the DRAM queueing delay its predictor traffic observes and matches or
//! beats the fixed-degree configuration's IPC on the low-accuracy
//! workload. The flip side — an accurate predictor must ride through the
//! feedback loop essentially untouched — is checked on the scan query.

use pv_experiments::bandwidth::cycles_per_transfer_sweep;
use pv_experiments::{throttle, Runner, Scale};
use pv_workloads::WorkloadId;

/// One (fixed, throttled) row pair of the sweep.
fn pair_at(
    rows: &[throttle::ThrottleRow],
    workload: &str,
    cycles_per_transfer: u64,
) -> (throttle::ThrottleRow, throttle::ThrottleRow) {
    let mut pair = rows
        .iter()
        .filter(|row| row.workload == workload && row.cycles_per_transfer == cycles_per_transfer);
    let fixed = pair.next().expect("fixed-degree row present").clone();
    let throttled = pair.next().expect("throttled row present").clone();
    assert!(!fixed.config.ends_with("-throttled"));
    assert!(throttled.config.ends_with("-throttled"));
    (fixed, throttled)
}

/// The pinned acceptance property at the scarcest `cycles_per_transfer`
/// point: strictly less predictor DRAM queueing delay, and at least the
/// fixed-degree IPC, on the workload whose accuracy engages the throttle.
#[test]
fn throttling_recovers_ipc_and_cuts_predictor_queue_delay_when_bandwidth_is_scarce() {
    let runner = Runner::with_default_threads(Scale::Smoke);
    let rows = throttle::rows_for(&runner, &[WorkloadId::Apache]);
    let scarcest = *cycles_per_transfer_sweep().last().expect("non-empty sweep");
    let (fixed, throttled) = pair_at(&rows, "Apache", scarcest);

    assert!(
        throttled.max_level > 0 && throttled.dropped_prefetches > 0,
        "Apache's misprediction rate must engage the throttle"
    );
    assert!(
        throttled.accuracy < 0.70,
        "the experiment's premise: Apache prefetches are inaccurate \
         (measured {:.2})",
        throttled.accuracy
    );
    assert!(
        throttled.pv_queue_cycles < fixed.pv_queue_cycles,
        "throttling must strictly reduce predictor DRAM queue delay at the \
         scarcest point ({} vs {})",
        throttled.pv_queue_cycles,
        fixed.pv_queue_cycles
    );
    assert!(
        throttled.ipc >= fixed.ipc,
        "throttling must match or beat fixed-degree IPC at the scarcest \
         point ({:.4} vs {:.4})",
        throttled.ipc,
        fixed.ipc
    );
    // The mechanism, not just the outcome: the win comes from suppressing
    // useless traffic, so the demand stream must also wait less.
    assert!(throttled.prefetches_issued < fixed.prefetches_issued);
    assert!(throttled.app_queue_cycles < fixed.app_queue_cycles);
}

/// An accurate predictor stays inside the dead band: the throttled variant
/// keeps (almost all of) the fixed-degree speedup at full bandwidth.
#[test]
fn accurate_predictors_ride_through_the_feedback_loop() {
    let runner = Runner::with_default_threads(Scale::Smoke);
    let rows = throttle::rows_for(&runner, &[WorkloadId::Qry1]);
    let fastest = cycles_per_transfer_sweep()[0];
    let (fixed, throttled) = pair_at(&rows, "Qry1", fastest);

    assert!(
        throttled.accuracy > 0.80,
        "the scan query predicts accurately (measured {:.2})",
        throttled.accuracy
    );
    assert!(
        fixed.speedup > 0.25,
        "fixed-degree prefetching must pay off at full bandwidth"
    );
    let retained = (1.0 + throttled.speedup) / (1.0 + fixed.speedup);
    assert!(
        retained > 0.95,
        "an accurate stream must keep its speedup under the feedback loop \
         (retained {:.3} of the fixed-degree performance)",
        retained
    );
    // Only a sliver of its predictions may be dropped.
    assert!(
        throttled.dropped_prefetches * 20 < fixed.prefetches_issued,
        "under 5% of an accurate stream's prefetches may be dropped \
         ({} of {})",
        throttled.dropped_prefetches,
        fixed.prefetches_issued
    );
}

/// Throttling is a per-epoch feedback loop, so more queue pressure must
/// never make the controller report nonsense: every sweep point reports
/// consistent counters and the throttled run never issues more than the
/// fixed one.
#[test]
fn throttle_rows_are_internally_consistent_across_the_sweep() {
    let runner = Runner::with_default_threads(Scale::Smoke);
    let rows = throttle::rows(&runner);
    assert_eq!(
        rows.len(),
        2 * 2 * cycles_per_transfer_sweep().len(),
        "two workloads x two configs per sweep point"
    );
    for row in &rows {
        if row.config.ends_with("-throttled") {
            assert!(row.accuracy > 0.0, "throttled runs sample accuracy");
        } else {
            assert_eq!(row.dropped_prefetches, 0);
            assert_eq!(row.max_level, 0);
        }
        assert!(row.next_line_issued > 0, "next-line counters are surfaced");
    }
    for &workload in &["Qry1", "Apache"] {
        for &cpt in &cycles_per_transfer_sweep() {
            let (fixed, throttled) = pair_at(&rows, workload, cpt);
            assert!(throttled.prefetches_issued <= fixed.prefetches_issued);
        }
    }
}
